// Worker core: one of the 8 compute cores of a cluster.
//
// Timing model: a worker spends setup cycles entering the kernel loop, then
// the kernel's calibrated cycles/item for its share of the chunk. The
// arithmetic itself is performed once per cluster (see Cluster) — the split
// across workers determines *when* the compute phase ends, not *what* is
// computed.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/component.h"

namespace mco::cluster {

struct WorkerConfig {
  /// Cycles to enter the kernel loop (stack frame, chunk bounds, stream
  /// configuration).
  sim::Cycles setup_cycles = 10;
};

class WorkerCore : public sim::Component {
 public:
  WorkerCore(sim::Simulator& sim, std::string name, WorkerConfig cfg,
             Component* parent = nullptr);

  /// Run a chunk costing `compute_cycles`; `done` fires when the worker
  /// reaches the cluster barrier. A worker with zero items still pays the
  /// setup (it enters the kernel, finds an empty range, and exits).
  void run(sim::Cycles compute_cycles, std::function<void()> done);

  bool busy() const { return busy_; }
  std::uint64_t chunks_run() const { return chunks_run_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }

 private:
  WorkerConfig cfg_;
  bool busy_ = false;
  std::uint64_t chunks_run_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace mco::cluster
