// Aligned console tables, used by benches to print paper-style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mco::util {

/// Collects rows of strings and prints them column-aligned.
///
///   TablePrinter t({"M", "baseline", "extended", "speedup"});
///   t.add_row({"32", "936", "633", "1.479"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Right-align numeric-looking cells (default true).
  void set_right_align(bool v) { right_align_ = v; }

  std::size_t row_count() const { return rows_.size(); }

  /// Render with a rule under the header.
  void print(std::ostream& os) const;

  /// Render to a string (for tests).
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  bool right_align_ = true;
};

}  // namespace mco::util
