// Tiny command-line option parser for examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mco::util {

/// Parses `--key=value`, `--key value` and bare `--flag` options.
///
/// Unknown positional arguments are collected in positional(). Typed getters
/// return the default when the option is absent and throw std::runtime_error
/// on malformed values, so examples fail loudly instead of silently
/// mis-running an experiment.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated integer list, e.g. --clusters=1,2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> opts_;
  std::vector<std::string> positional_;
};

}  // namespace mco::util
