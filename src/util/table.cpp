#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mco::util {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' ||
          c == '%' || c == 'x'))
      return false;
  }
  return true;
}
}  // namespace

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  const auto emit = [&](const std::vector<std::string>& row, bool align) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      const bool right = align && looks_numeric(row[c]);
      if (c) os << "  ";
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit(header_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, right_align_);
}

std::string TablePrinter::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

}  // namespace mco::util
