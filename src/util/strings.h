// String/formatting helpers (kept tiny; no external deps).
#pragma once

#include <string>
#include <vector>

namespace mco::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Lower-case ASCII copy.
std::string to_lower(std::string s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Human-readable byte count ("1.5 KiB", "3 MiB").
std::string human_bytes(std::uint64_t bytes);

/// Fixed-precision double ("12.34").
std::string fixed(double v, int precision);

}  // namespace mco::util
