#include "util/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace mco::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), static_cast<std::size_t>(n) + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& s) {
  const auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < sizeof(units) / sizeof(units[0])) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return format("%llu B", static_cast<unsigned long long>(bytes));
  return format("%.1f %s", v, units[u]);
}

std::string fixed(double v, int precision) { return format("%.*f", precision, v); }

}  // namespace mco::util
