// Minimal CSV emission for experiment results.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mco::util {

/// Writes rows of heterogeneous cells as RFC-4180-ish CSV.
///
/// Cells containing separators/quotes/newlines are quoted; numeric overloads
/// format with full precision. A writer targets either a file (throws
/// std::runtime_error if it cannot be opened) or an in-memory string for
/// tests.
class CsvWriter {
 public:
  /// In-memory writer (inspect with str()).
  CsvWriter();
  /// File-backed writer.
  explicit CsvWriter(const std::string& path);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  CsvWriter& cell(const std::string& v);
  CsvWriter& cell(const char* v);
  CsvWriter& cell(double v);
  CsvWriter& cell(std::uint64_t v);
  CsvWriter& cell(std::int64_t v);
  CsvWriter& cell(int v);
  CsvWriter& cell(unsigned v);

  /// Convenience: a full header/data row at once.
  CsvWriter& row(const std::vector<std::string>& cells);

  /// Terminate the current row.
  void end_row();

  /// Flush and return accumulated text (valid for both modes).
  const std::string& str() const { return buffer_; }

  /// Number of completed rows.
  std::size_t rows_written() const { return rows_; }

  ~CsvWriter();

 private:
  void raw(const std::string& escaped);
  static std::string escape(const std::string& v);

  std::ofstream file_;
  bool to_file_ = false;
  bool row_open_ = false;
  std::size_t rows_ = 0;
  std::string buffer_;
};

}  // namespace mco::util
