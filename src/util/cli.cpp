#include "util/cli.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      opts_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      opts_[arg] = argv[++i];
    } else {
      opts_[arg] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& key) const { return opts_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  const auto it = opts_.find(key);
  return it == opts_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  const auto it = opts_.find(key);
  if (it == opts_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos, 0);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("Cli: --" + key + " expects an integer, got '" + it->second + "'");
  }
}

double Cli::get_double(const std::string& key, double def) const {
  const auto it = opts_.find(key);
  if (it == opts_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("Cli: --" + key + " expects a number, got '" + it->second + "'");
  }
}

bool Cli::get_bool(const std::string& key, bool def) const {
  const auto it = opts_.find(key);
  if (it == opts_.end()) return def;
  const std::string v = to_lower(it->second);
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::runtime_error("Cli: --" + key + " expects a boolean, got '" + it->second + "'");
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& key,
                                            std::vector<std::int64_t> def) const {
  const auto it = opts_.find(key);
  if (it == opts_.end()) return def;
  std::vector<std::int64_t> out;
  for (const auto& part : split(it->second, ',')) {
    const std::string p = trim(part);
    if (p.empty()) continue;
    try {
      out.push_back(std::stoll(p, nullptr, 0));
    } catch (const std::exception&) {
      throw std::runtime_error("Cli: --" + key + " expects integers, got '" + p + "'");
    }
  }
  return out;
}

}  // namespace mco::util
