#include "util/csv.h"

#include <cstdint>
#include <stdexcept>

#include "util/strings.h"

namespace mco::util {

CsvWriter::CsvWriter() = default;

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::~CsvWriter() {
  if (to_file_ && file_) file_ << buffer_;
}

std::string CsvWriter::escape(const std::string& v) {
  const bool needs_quote = v.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::raw(const std::string& escaped) {
  if (row_open_) buffer_ += ',';
  buffer_ += escaped;
  row_open_ = true;
}

CsvWriter& CsvWriter::cell(const std::string& v) {
  raw(escape(v));
  return *this;
}
CsvWriter& CsvWriter::cell(const char* v) { return cell(std::string(v)); }
CsvWriter& CsvWriter::cell(double v) {
  raw(format("%.10g", v));
  return *this;
}
CsvWriter& CsvWriter::cell(std::uint64_t v) {
  raw(format("%llu", static_cast<unsigned long long>(v)));
  return *this;
}
CsvWriter& CsvWriter::cell(std::int64_t v) {
  raw(format("%lld", static_cast<long long>(v)));
  return *this;
}
CsvWriter& CsvWriter::cell(int v) { return cell(static_cast<std::int64_t>(v)); }
CsvWriter& CsvWriter::cell(unsigned v) { return cell(static_cast<std::uint64_t>(v)); }

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) cell(c);
  end_row();
  return *this;
}

void CsvWriter::end_row() {
  buffer_ += '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace mco::util
