// Small integer/math helpers used across the simulator.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace mco::util {

/// ceil(a / b) for non-negative integers. b must be > 0.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  assert(b > 0);
  return static_cast<T>((a + b - 1) / b);
}

/// Round `a` up to the next multiple of `b` (b > 0).
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

/// True if `v` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v > 0.
constexpr unsigned log2_floor(std::uint64_t v) {
  assert(v > 0);
  unsigned r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// ceil(log2(v)) for v > 0.
constexpr unsigned log2_ceil(std::uint64_t v) {
  assert(v > 0);
  return is_pow2(v) ? log2_floor(v) : log2_floor(v) + 1;
}

/// An exact rational cost rate `num/den` cycles per item.
///
/// Kernel throughputs like "2.6 cycles per element" are represented exactly
/// (13/5) so that simulated cycle counts are deterministic integers:
/// cycles(n) = ceil(n * num / den).
struct Rate {
  std::uint64_t num = 1;
  std::uint64_t den = 1;

  constexpr std::uint64_t cycles_for(std::uint64_t items) const {
    assert(den > 0);
    return items == 0 ? 0 : (items * num + den - 1) / den;
  }
  constexpr double as_double() const { return static_cast<double>(num) / static_cast<double>(den); }
};

}  // namespace mco::util
