// Host↔cluster interconnect with an optional multicast extension.
//
// The paper's key hardware change: the baseline interconnect only supports
// unicast stores, so dispatching a job to M clusters costs M sequential
// mailbox writes from the host (overhead linear in M). The extension adds a
// multicast path — the host issues the dispatch once and a replication tree
// delivers it to every selected cluster (constant overhead).
//
// The interconnect also routes cluster→sync-unit credit writes and
// cluster→HBM atomic increments for the baseline software completion scheme.
// Routing is by registered sinks, keeping this library independent of the
// concrete mailbox / sync-unit types.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "noc/message.h"
#include "sim/component.h"

namespace mco::fault {
class FaultInjector;
}

namespace mco::noc {

struct NocConfig {
  bool multicast_enabled = false;
  /// Host → cluster mailbox delivery latency (one hop through the SoC
  /// crossbar hierarchy).
  sim::Cycles host_to_cluster_latency = 14;
  /// Extra latency of the multicast replication tree.
  sim::Cycles multicast_tree_latency = 3;
  /// Cluster → synchronization unit credit-write latency.
  sim::Cycles cluster_to_sync_latency = 12;
  /// Cluster → HBM latency for baseline atomic increments.
  sim::Cycles cluster_to_hbm_latency = 12;
};

class Interconnect : public sim::Component {
 public:
  using DispatchSink = std::function<void(const DispatchMessage&)>;
  using CreditSink = std::function<void(unsigned cluster)>;
  using AmoSink = std::function<void(unsigned cluster)>;

  Interconnect(sim::Simulator& sim, std::string name, NocConfig cfg, unsigned num_clusters,
               Component* parent = nullptr);

  const NocConfig& config() const { return cfg_; }
  unsigned num_clusters() const { return num_clusters_; }

  /// Wire a cluster's mailbox; must be done for every cluster before traffic.
  void set_cluster_sink(unsigned cluster, DispatchSink sink);
  /// Wire the sync unit's credit-increment register.
  void set_credit_sink(CreditSink sink);
  /// Wire the shared-memory counter's atomic port (baseline completion).
  void set_amo_sink(AmoSink sink);

  /// Wire the fault injector (nullptr = fault-free fabric). Dispatch
  /// deliveries then consult it per target for drop/delay faults.
  void set_fault_injector(fault::FaultInjector* fi) { fault_ = fi; }

  /// Unicast a dispatch message to one cluster (always available).
  void unicast_dispatch(unsigned cluster, DispatchMessage msg);

  /// Multicast a dispatch message to `clusters`. Throws std::logic_error if
  /// the multicast extension is not enabled in this configuration — the
  /// offload runtime must fall back to sequential unicasts.
  void multicast_dispatch(const std::vector<unsigned>& clusters, DispatchMessage msg);

  /// A cluster's credit write to the sync unit (extended completion path).
  void send_credit(unsigned cluster);

  /// A cluster's atomic increment towards shared memory (baseline path).
  void send_amo(unsigned cluster);

  std::uint64_t unicasts_sent() const { return unicasts_; }
  std::uint64_t multicasts_sent() const { return multicasts_; }
  std::uint64_t credits_routed() const { return credits_; }
  std::uint64_t amos_routed() const { return amos_; }

 private:
  void check_cluster(unsigned cluster) const;
  void deliver_dispatch(unsigned cluster, const DispatchMessage& msg, sim::Cycles base_latency);

  NocConfig cfg_;
  fault::FaultInjector* fault_ = nullptr;
  unsigned num_clusters_;
  std::vector<DispatchSink> cluster_sinks_;
  CreditSink credit_sink_;
  AmoSink amo_sink_;
  std::uint64_t unicasts_ = 0;
  std::uint64_t multicasts_ = 0;
  std::uint64_t credits_ = 0;
  std::uint64_t amos_ = 0;
  // Per-message latency histograms (delivered messages only; a dropped
  // dispatch never reaches its mailbox and is accounted by the fault
  // counters instead). Registered once, sampled by cached reference.
  sim::Histogram& dispatch_latency_hist_;
  sim::Histogram& completion_latency_hist_;
};

}  // namespace mco::noc
