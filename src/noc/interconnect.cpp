#include "noc/interconnect.h"

#include "fault/fault_injector.h"
#include "util/strings.h"

namespace mco::noc {

Interconnect::Interconnect(sim::Simulator& sim, std::string name, NocConfig cfg,
                           unsigned num_clusters, Component* parent)
    : Component(sim, std::move(name), parent),
      cfg_(cfg),
      num_clusters_(num_clusters),
      cluster_sinks_(num_clusters),
      dispatch_latency_hist_(
          sim.stats().histogram(this->name() + ".dispatch_latency_cycles", 8.0, 64)),
      completion_latency_hist_(
          sim.stats().histogram(this->name() + ".completion_latency_cycles", 8.0, 64)) {
  if (num_clusters_ == 0) throw std::invalid_argument("Interconnect: zero clusters");
}

void Interconnect::check_cluster(unsigned cluster) const {
  if (cluster >= num_clusters_)
    throw std::out_of_range(util::format("%s: cluster %u out of range (%u clusters)",
                                         path().c_str(), cluster, num_clusters_));
}

void Interconnect::set_cluster_sink(unsigned cluster, DispatchSink sink) {
  check_cluster(cluster);
  cluster_sinks_[cluster] = std::move(sink);
}

void Interconnect::set_credit_sink(CreditSink sink) { credit_sink_ = std::move(sink); }
void Interconnect::set_amo_sink(AmoSink sink) { amo_sink_ = std::move(sink); }

void Interconnect::deliver_dispatch(unsigned cluster, const DispatchMessage& msg,
                                    sim::Cycles base_latency) {
  sim::Cycles latency = base_latency;
  if (fault_ && fault_->enabled()) {
    const auto f = fault_->on_dispatch(cluster);
    if (f.drop) return;  // the store vanishes in the fabric
    latency += f.extra_delay;
  }
  dispatch_latency_hist_.sample(static_cast<double>(latency));
  defer(latency, [this, cluster, m = msg] { cluster_sinks_[cluster](m); },
        sim::Priority::kWire);
}

void Interconnect::unicast_dispatch(unsigned cluster, DispatchMessage msg) {
  check_cluster(cluster);
  if (!cluster_sinks_[cluster]) throw std::logic_error("Interconnect: cluster sink not wired");
  ++unicasts_;
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.record(now(), path(), "unicast", util::format("cluster=%u", cluster));
  deliver_dispatch(cluster, msg, cfg_.host_to_cluster_latency);
}

void Interconnect::multicast_dispatch(const std::vector<unsigned>& clusters, DispatchMessage msg) {
  if (!cfg_.multicast_enabled)
    throw std::logic_error(path() + ": multicast extension not enabled in this configuration");
  if (clusters.empty()) throw std::invalid_argument("Interconnect: empty multicast set");
  for (const unsigned c : clusters) {
    check_cluster(c);
    if (!cluster_sinks_[c]) throw std::logic_error("Interconnect: cluster sink not wired");
  }
  ++multicasts_;
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.record(now(), path(), "multicast",
                       util::format("targets=%zu", clusters.size()));
  if (fault_ && fault_->enabled()) {
    // Per-target delivery so each replica of the store can be dropped or
    // delayed independently (a fault in one branch of the replication tree).
    // Delivery order over targets matches the grouped path below.
    for (const unsigned c : clusters) {
      deliver_dispatch(c, msg, cfg_.host_to_cluster_latency + cfg_.multicast_tree_latency);
    }
    return;
  }
  // The replication tree delivers to all targets at the same cycle.
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    dispatch_latency_hist_.sample(
        static_cast<double>(cfg_.host_to_cluster_latency + cfg_.multicast_tree_latency));
  }
  defer(cfg_.host_to_cluster_latency + cfg_.multicast_tree_latency,
        [this, targets = clusters, m = std::move(msg)] {
          for (const unsigned c : targets) cluster_sinks_[c](m);
        },
        sim::Priority::kWire);
}

void Interconnect::send_credit(unsigned cluster) {
  check_cluster(cluster);
  if (!credit_sink_) throw std::logic_error("Interconnect: credit sink not wired");
  ++credits_;
  completion_latency_hist_.sample(static_cast<double>(cfg_.cluster_to_sync_latency));
  defer(cfg_.cluster_to_sync_latency, [this, cluster] { credit_sink_(cluster); },
        sim::Priority::kWire);
}

void Interconnect::send_amo(unsigned cluster) {
  check_cluster(cluster);
  if (!amo_sink_) throw std::logic_error("Interconnect: amo sink not wired");
  ++amos_;
  completion_latency_hist_.sample(static_cast<double>(cfg_.cluster_to_hbm_latency));
  defer(cfg_.cluster_to_hbm_latency, [this, cluster] { amo_sink_(cluster); },
        sim::Priority::kWire);
}

}  // namespace mco::noc
