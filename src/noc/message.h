// Messages carried by the host↔accelerator interconnect.
#pragma once

#include <cstdint>
#include <vector>

namespace mco::noc {

/// A job-dispatch message: the handler id and marshalled arguments the host
/// writes into a cluster's mailbox. With the multicast extension one such
/// message reaches many clusters at once.
struct DispatchMessage {
  std::vector<std::uint64_t> words;

  std::size_t size_words() const { return words.size(); }
};

}  // namespace mco::noc
