// The sweep engine: executes independent Soc simulations on a thread pool.
//
// Each run point builds a fresh Soc (see soc/soc.h's "many concurrent
// instances" contract), runs one verified offload, and writes its result
// into an index-addressed slot — so the collected output is bit-identical
// for --jobs 1 and --jobs N, and parallelism is purely a wall-clock
// optimization. Benches/examples with non-standard per-point work (energy
// accounts, offload trains, ISS microbenchmarks) use the generic map() with
// their own point → result function and inherit the same guarantee.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <type_traits>
#include <vector>

#include "exp/result_set.h"
#include "exp/spec.h"
#include "exp/thread_pool.h"

namespace mco::exp {

class SweepRunner {
 public:
  /// `jobs` simulations run concurrently; 1 = serial (no threads at all),
  /// 0 = one per hardware thread.
  explicit SweepRunner(unsigned jobs = 1);

  unsigned jobs() const { return pool_.threads(); }

  /// Expand the spec and run every point (verified offloads).
  ResultSet run(const ExperimentSpec& spec);

  /// Run an explicit point list (for non-rectangular grids).
  ResultSet run(const std::string& name, const std::vector<RunPoint>& points);

  /// Execute one standard point: fresh Soc, prepared workload, verified
  /// offload. Throws std::runtime_error if the result error exceeds the
  /// point's tolerance. Thread-safe (used by run(); callable from map fns).
  static PointResult run_point(const RunPoint& point);

  /// Deterministic parallel map: returns {fn(items[0]), ..., fn(items.back())}
  /// in input order regardless of the execution interleaving. The result
  /// type must be default-constructible. The first exception (in item
  /// order) is rethrown after all items finish.
  template <typename T, typename F>
  auto map(const std::vector<T>& items, F fn)
      -> std::vector<std::invoke_result_t<F&, const T&>> {
    using R = std::invoke_result_t<F&, const T&>;
    std::vector<R> out(items.size());
    std::vector<std::exception_ptr> errors(items.size());
    pool_.for_each_index(items.size(), [&](std::size_t i) {
      try {
        out[i] = fn(items[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return out;
  }

  /// Simulated cycles accumulated by run()/run_point via this runner, plus
  /// any note_cycles() contributions — integer sum, so deterministic across
  /// execution orders. Feeds the benches' machine-readable sweep footer.
  std::uint64_t sim_cycles() const { return sim_cycles_.load(std::memory_order_relaxed); }
  std::uint64_t points_run() const { return points_run_.load(std::memory_order_relaxed); }

  /// Credit one custom-mapped simulation toward the aggregate counters.
  void note_cycles(std::uint64_t cycles) {
    sim_cycles_.fetch_add(cycles, std::memory_order_relaxed);
    points_run_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Parse a --jobs/MCO_JOBS value. Accepts a plain decimal integer in
  /// [1, 1024]; throws std::invalid_argument for anything else (zero,
  /// negatives, garbage, trailing junk, absurd counts) — silent fallbacks
  /// here have burned enough sweep runs.
  static unsigned parse_jobs(const std::string& value);

  /// Extract and REMOVE --jobs=N / --jobs N from argc/argv (the shared
  /// bench flag, stripped before benchmark::Initialize like the
  /// observability flags). Absent flag: the MCO_JOBS environment variable,
  /// else 1. Invalid values (see parse_jobs) print a clear message to
  /// stderr and exit(2) — uniformly across every bench and example.
  static unsigned jobs_from_args(int& argc, char** argv);

 private:
  ThreadPool pool_;
  std::atomic<std::uint64_t> sim_cycles_{0};
  std::atomic<std::uint64_t> points_run_{0};
};

}  // namespace mco::exp
