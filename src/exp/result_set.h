// Ordered, queryable results of one sweep, with table/CSV/JSON emission.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/spec.h"
#include "offload/offload_result.h"

namespace mco::exp {

/// Outcome of one RunPoint: the verified offload's host-observed timing.
struct PointResult {
  RunPoint point;
  sim::Cycles total = 0;                 ///< offload latency (OffloadResult::total)
  offload::PhaseBreakdown phases;        ///< Eq. (1) phase budget
  std::uint64_t payload_words = 0;       ///< descriptor words marshalled
  double max_abs_error = 0.0;            ///< measured output error vs. oracle
  bool degraded = false;                 ///< completed below requested parallelism
  std::uint64_t watchdog_timeouts = 0;   ///< recovery activity (0 when fault-free)
  std::uint64_t retries = 0;
};

/// Results in RunPoint order — identical for any worker count, so every
/// emission below is byte-stable across --jobs values.
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(std::string name, std::vector<PointResult> rows);

  const std::string& name() const { return name_; }
  const std::vector<PointResult>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  const PointResult& at(std::size_t i) const { return rows_.at(i); }

  /// Coordinate lookup; throws std::out_of_range when the sweep holds no
  /// such point (a typo'd lookup is an experiment bug, not a default).
  const PointResult& find(const std::string& config_label, const std::string& kernel,
                          std::uint64_t n, unsigned m, std::uint64_t seed = 42) const;
  sim::Cycles cycles(const std::string& config_label, const std::string& kernel,
                     std::uint64_t n, unsigned m, std::uint64_t seed = 42) const {
    return find(config_label, kernel, n, m, seed).total;
  }

  /// Sum of all points' simulated cycles.
  std::uint64_t total_sim_cycles() const;

  /// CSV: one row per point (config,kernel,n,m,seed,total,phase columns...).
  std::string to_csv() const;

  /// JSON document, schema "mco-sweep-v1" (sibling of the stats registry's
  /// "mco-metrics-v1"): sweep name, point list with coordinates, total and
  /// phase breakdown. Deterministic key and point order.
  std::string to_json() const;

 private:
  static std::string key(const std::string& config_label, const std::string& kernel,
                         std::uint64_t n, unsigned m, std::uint64_t seed);

  std::string name_ = "sweep";
  std::vector<PointResult> rows_;
  std::vector<std::pair<std::string, std::size_t>> index_;  ///< sorted key → row
};

}  // namespace mco::exp
