#include "exp/spec.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "soc/config_io.h"
#include "util/strings.h"

namespace mco::exp {

std::uint64_t parse_dialect_u64(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const unsigned long long out = std::stoull(v, &pos, 0);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(util::format(
        "key '%s' expects an unsigned integer, got '%s'", key.c_str(), v.c_str()));
  }
}

double parse_dialect_f64(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(
        util::format("key '%s' expects a number, got '%s'", key.c_str(), v.c_str()));
  }
}

std::vector<std::string> parse_dialect_list(const std::string& value) {
  std::vector<std::string> out;
  for (const std::string& item : util::split(value, ',')) {
    const std::string t = util::trim(item);
    if (t.empty()) throw std::invalid_argument("empty list element in '" + value + "'");
    out.push_back(t);
  }
  return out;
}

namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  try {
    return parse_dialect_u64(key, v);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("spec: ") + e.what());
  }
}

double parse_f64(const std::string& key, const std::string& v) {
  try {
    return parse_dialect_f64(key, v);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("spec: ") + e.what());
  }
}

std::vector<std::string> parse_list(const std::string& value) {
  try {
    return parse_dialect_list(value);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("spec: ") + e.what());
  }
}

/// "baseline(64)" / "extended" / "multicast_only(32)" / "default" → SocConfig.
soc::SocConfig parse_preset(const std::string& label, const std::string& value) {
  std::string name = value;
  unsigned clusters = 32;
  const std::size_t open = value.find('(');
  if (open != std::string::npos) {
    if (value.back() != ')')
      throw std::invalid_argument("spec: malformed preset '" + value + "' for config." + label);
    name = util::trim(value.substr(0, open));
    clusters = static_cast<unsigned>(
        parse_u64("config." + label, value.substr(open + 1, value.size() - open - 2)));
  }
  if (clusters == 0 || clusters > 1024) {
    throw std::invalid_argument(util::format(
        "spec: config.%s preset cluster count %u outside [1, 1024]", label.c_str(), clusters));
  }
  if (name == "baseline") return soc::SocConfig::baseline(clusters);
  if (name == "extended") return soc::SocConfig::extended(clusters);
  if (name == "multicast_only") return soc::SocConfig::with_features(clusters, {true, false});
  if (name == "hw_sync_only") return soc::SocConfig::with_features(clusters, {false, true});
  if (name == "default") {
    soc::SocConfig cfg;
    cfg.num_clusters = clusters;
    cfg.address_map.num_clusters = clusters;
    if (cfg.hbm.num_ports < clusters + 1) cfg.hbm.num_ports = clusters + 1;
    return cfg;
  }
  throw std::invalid_argument(
      util::format("spec: unknown config preset '%s' for config.%s (expected baseline, "
                   "extended, multicast_only, hw_sync_only or default)",
                   value.c_str(), label.c_str()));
}

}  // namespace

std::vector<RunPoint> ExperimentSpec::points() const {
  std::vector<ConfigVariant> variants = configs;
  if (variants.empty()) variants.push_back({"extended", soc::SocConfig::extended(32)});
  std::vector<RunPoint> out;
  out.reserve(variants.size() * kernels.size() * ns.size() * ms.size() * seeds.size());
  for (const ConfigVariant& v : variants) {
    for (const std::string& kernel : kernels) {
      for (const std::uint64_t n : ns) {
        for (const unsigned m : ms) {
          for (const std::uint64_t seed : seeds) {
            RunPoint p;
            p.config_label = v.label;
            p.cfg = v.cfg;
            p.kernel = kernel;
            p.n = n;
            p.m = m;
            p.seed = seed;
            p.tolerance = tolerance;
            out.push_back(std::move(p));
          }
        }
      }
    }
  }
  return out;
}

ExperimentSpec load_spec_text(const std::string& text) {
  ExperimentSpec spec;
  bool saw_kernel = false, saw_n = false, saw_m = false, saw_seed = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(util::format("spec line %d: expected 'key = value', got '%s'",
                                               lineno, trimmed.c_str()));
    }
    const std::string key = util::trim(trimmed.substr(0, eq));
    const std::string value = util::trim(trimmed.substr(eq + 1));
    try {
      if (key == "name") {
        spec.name = value;
      } else if (key == "kernel") {
        if (!saw_kernel) {
          spec.kernels.clear();
          saw_kernel = true;
        }
        for (const std::string& k : parse_list(value)) spec.kernels.push_back(k);
      } else if (key == "n") {
        if (!saw_n) {
          spec.ns.clear();
          saw_n = true;
        }
        for (const std::string& v : parse_list(value)) {
          const std::uint64_t n = parse_u64(key, v);
          if (n == 0) throw std::invalid_argument("spec: n must be >= 1");
          spec.ns.push_back(n);
        }
      } else if (key == "m") {
        if (!saw_m) {
          spec.ms.clear();
          saw_m = true;
        }
        for (const std::string& v : parse_list(value)) {
          const std::uint64_t m = parse_u64(key, v);
          // A zero-cluster point can only fail deep inside the runtime, and a
          // value past the largest preset fabric truncates on the cast: both
          // are spec bugs, surfaced here with the line number.
          if (m == 0 || m > 1024)
            throw std::invalid_argument(
                util::format("spec: m = %llu outside [1, 1024]",
                             static_cast<unsigned long long>(m)));
          spec.ms.push_back(static_cast<unsigned>(m));
        }
      } else if (key == "seed") {
        if (!saw_seed) {
          spec.seeds.clear();
          saw_seed = true;
        }
        for (const std::string& v : parse_list(value)) spec.seeds.push_back(parse_u64(key, v));
      } else if (key == "tolerance") {
        const double tol = parse_f64(key, value);
        if (!(tol >= 0.0))  // negated to also reject NaN
          throw std::invalid_argument("spec: tolerance must be >= 0");
        spec.tolerance = tol;
      } else if (util::starts_with(key, "config.")) {
        const std::string rest = key.substr(7);
        const std::size_t dot = rest.find('.');
        if (rest.empty() || dot == 0) {
          throw std::invalid_argument("spec: malformed config key '" + key + "'");
        }
        if (dot == std::string::npos) {
          // config.<label> = <preset>: declares a new variant.
          for (const ConfigVariant& v : spec.configs) {
            if (v.label == rest)
              throw std::invalid_argument("spec: duplicate config variant '" + rest + "'");
          }
          spec.configs.push_back({rest, parse_preset(rest, value)});
        } else {
          // config.<label>.<dotted-key> = <value>: overrides via config_io.
          const std::string label = rest.substr(0, dot);
          const std::string cfg_key = rest.substr(dot + 1);
          ConfigVariant* variant = nullptr;
          for (ConfigVariant& v : spec.configs) {
            if (v.label == label) variant = &v;
          }
          if (!variant) {
            throw std::invalid_argument(util::format(
                "spec: config override for undeclared variant '%s' — declare "
                "'config.%s = <preset>' first",
                label.c_str(), label.c_str()));
          }
          variant->cfg = soc::load_text(cfg_key + " = " + value, variant->cfg);
        }
      } else {
        throw std::invalid_argument("spec: unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(util::format("spec line %d: %s", lineno, e.what()));
    }
  }
  return spec;
}

std::string save_spec_text(const ExperimentSpec& spec) {
  const auto join = [](const std::vector<std::string>& items) {
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) out += ", ";
      out += items[i];
    }
    return out;
  };
  std::vector<std::string> ns, ms, seeds;
  for (const auto n : spec.ns) ns.push_back(util::format("%llu", static_cast<unsigned long long>(n)));
  for (const auto m : spec.ms) ms.push_back(util::format("%u", m));
  for (const auto s : spec.seeds) seeds.push_back(util::format("%llu", static_cast<unsigned long long>(s)));

  std::string out = "# mcoffload experiment spec\n";
  out += "name = " + spec.name + "\n";
  out += "kernel = " + join(spec.kernels) + "\n";
  out += "n = " + join(ns) + "\n";
  out += "m = " + join(ms) + "\n";
  out += "seed = " + join(seeds) + "\n";
  out += util::format("tolerance = %.17g\n", spec.tolerance);
  for (const ConfigVariant& v : spec.configs) {
    // Anchor on the default preset, then emit every config_io key — the
    // dotted dialect reproduces the exact SocConfig on load.
    out += util::format("config.%s = default(%u)\n", v.label.c_str(), v.cfg.num_clusters);
    std::istringstream lines(soc::save_text(v.cfg));
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      out += "config." + v.label + "." + line + "\n";
    }
  }
  return out;
}

ExperimentSpec load_spec_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_spec_file: cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return load_spec_text(ss.str());
}

void save_spec_file(const ExperimentSpec& spec, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_spec_file: cannot open " + path);
  f << save_spec_text(spec);
}

}  // namespace mco::exp
