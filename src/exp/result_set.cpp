#include "exp/result_set.h"

#include <algorithm>
#include <stdexcept>

#include "util/csv.h"
#include "util/strings.h"

namespace mco::exp {

std::string ResultSet::key(const std::string& config_label, const std::string& kernel,
                           std::uint64_t n, unsigned m, std::uint64_t seed) {
  return config_label + '\x1f' + kernel +
         util::format("\x1f%llu\x1f%u\x1f%llu", static_cast<unsigned long long>(n), m,
                      static_cast<unsigned long long>(seed));
}

ResultSet::ResultSet(std::string name, std::vector<PointResult> rows)
    : name_(std::move(name)), rows_(std::move(rows)) {
  index_.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const RunPoint& p = rows_[i].point;
    index_.emplace_back(key(p.config_label, p.kernel, p.n, p.m, p.seed), i);
  }
  std::sort(index_.begin(), index_.end());
}

const PointResult& ResultSet::find(const std::string& config_label, const std::string& kernel,
                                   std::uint64_t n, unsigned m, std::uint64_t seed) const {
  const std::string k = key(config_label, kernel, n, m, seed);
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), k,
      [](const std::pair<std::string, std::size_t>& e, const std::string& v) {
        return e.first < v;
      });
  if (it == index_.end() || it->first != k) {
    throw std::out_of_range(util::format(
        "ResultSet '%s': no point (config=%s, kernel=%s, n=%llu, m=%u, seed=%llu)",
        name_.c_str(), config_label.c_str(), kernel.c_str(),
        static_cast<unsigned long long>(n), m, static_cast<unsigned long long>(seed)));
  }
  return rows_[it->second];
}

std::uint64_t ResultSet::total_sim_cycles() const {
  std::uint64_t sum = 0;
  for (const PointResult& r : rows_) sum += r.total;
  return sum;
}

std::string ResultSet::to_csv() const {
  util::CsvWriter csv;
  csv.row({"config", "kernel", "n", "m", "seed", "total_cycles", "marshal", "sync_setup",
           "dispatch", "wait", "epilogue", "max_abs_error", "degraded"});
  for (const PointResult& r : rows_) {
    csv.cell(r.point.config_label)
        .cell(r.point.kernel)
        .cell(r.point.n)
        .cell(r.point.m)
        .cell(r.point.seed)
        .cell(r.total)
        .cell(r.phases.marshal)
        .cell(r.phases.sync_setup)
        .cell(r.phases.dispatch)
        .cell(r.phases.wait)
        .cell(r.phases.epilogue)
        .cell(r.max_abs_error)
        .cell(r.degraded ? "true" : "false");
    csv.end_row();
  }
  return csv.str();
}

std::string ResultSet::to_json() const {
  std::string out = "{\n  \"schema\": \"mco-sweep-v1\",\n";
  out += "  \"name\": \"" + name_ + "\",\n";
  out += util::format("  \"points\": [");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const PointResult& r = rows_[i];
    out += i ? ",\n    " : "\n    ";
    out += util::format(
        "{\"config\": \"%s\", \"kernel\": \"%s\", \"n\": %llu, \"m\": %u, \"seed\": %llu, "
        "\"total_cycles\": %llu, \"phases\": {\"marshal\": %llu, \"sync_setup\": %llu, "
        "\"dispatch\": %llu, \"wait\": %llu, \"epilogue\": %llu}, \"max_abs_error\": %.17g, "
        "\"degraded\": %s}",
        r.point.config_label.c_str(), r.point.kernel.c_str(),
        static_cast<unsigned long long>(r.point.n), r.point.m,
        static_cast<unsigned long long>(r.point.seed),
        static_cast<unsigned long long>(r.total),
        static_cast<unsigned long long>(r.phases.marshal),
        static_cast<unsigned long long>(r.phases.sync_setup),
        static_cast<unsigned long long>(r.phases.dispatch),
        static_cast<unsigned long long>(r.phases.wait),
        static_cast<unsigned long long>(r.phases.epilogue), r.max_abs_error,
        r.degraded ? "true" : "false");
  }
  out += rows_.empty() ? "],\n" : "\n  ],\n";
  out += util::format("  \"total_sim_cycles\": %llu\n}\n",
                      static_cast<unsigned long long>(total_sim_cycles()));
  return out;
}

}  // namespace mco::exp
