// Declarative experiment descriptions: a run point is data, not a loop.
//
// Every paper experiment is a grid — {SoC design variants} × {kernel, N, M,
// seed} — and the repo's benches all used to hand-roll the same nested loop
// over it. ExperimentSpec names that grid once; expanding it yields the flat,
// deterministically ordered list of RunPoints the SweepRunner executes.
//
// Specs can live in version-controlled text files using the same "key =
// value" dialect as soc/config_io, with comma-separated lists for the grid
// axes and per-variant config overrides through the existing dotted keys:
//
//   name = fig1_left
//   kernel = daxpy
//   n = 1024
//   m = 1, 2, 4, 8, 16, 32, 64
//   config.baseline = baseline(64)       # preset designs
//   config.extended = extended(64)
//   config.slow_hbm = extended(64)
//   config.slow_hbm.hbm.beats_per_cycle = 8   # any soc/config_io key
//
// Unknown keys and malformed values are hard errors, as in config_io.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soc/config.h"

namespace mco::exp {

/// One labeled SoC design participating in a sweep.
struct ConfigVariant {
  std::string label;
  soc::SocConfig cfg;
};

/// One fully resolved simulation: build a Soc from `cfg`, run `kernel` with
/// problem size `n` on `m` clusters, workload seed `seed`, verify against
/// the host oracle within `tolerance`.
struct RunPoint {
  std::string config_label;
  soc::SocConfig cfg;
  std::string kernel = "daxpy";
  std::uint64_t n = 1024;
  unsigned m = 1;
  std::uint64_t seed = 42;
  double tolerance = 1e-9;
};

/// A declarative grid of run points. points() expands the cross product
/// config × kernel × n × m × seed in that (deterministic) nesting order.
struct ExperimentSpec {
  std::string name = "sweep";
  std::vector<ConfigVariant> configs;  ///< empty = one extended(32) variant
  std::vector<std::string> kernels{"daxpy"};
  std::vector<std::uint64_t> ns{1024};
  std::vector<unsigned> ms{1};
  std::vector<std::uint64_t> seeds{42};
  double tolerance = 1e-9;

  std::vector<RunPoint> points() const;
};

/// Shared "key = value" dialect scalar parsers (strict: the whole value must
/// parse). Throw std::invalid_argument naming `key`. The scenario engine's
/// dialect (scenario/scenario.h) layers on these so numeric error messages
/// stay uniform across spec files and scenario files.
std::uint64_t parse_dialect_u64(const std::string& key, const std::string& value);
double parse_dialect_f64(const std::string& key, const std::string& value);
/// Split a comma-separated list, trimming items; empty items are errors.
std::vector<std::string> parse_dialect_list(const std::string& value);

/// Parse / render the spec-file dialect. load(save(spec)) == spec.
ExperimentSpec load_spec_text(const std::string& text);
std::string save_spec_text(const ExperimentSpec& spec);

/// File variants; throw std::runtime_error if the file cannot be accessed.
ExperimentSpec load_spec_file(const std::string& path);
void save_spec_file(const ExperimentSpec& spec, const std::string& path);

}  // namespace mco::exp
