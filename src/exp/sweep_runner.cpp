#include "exp/sweep_runner.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/rng.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/strings.h"

namespace mco::exp {

SweepRunner::SweepRunner(unsigned jobs) : pool_(jobs) {}

PointResult SweepRunner::run_point(const RunPoint& point) {
  soc::Soc soc(point.cfg);
  const kernels::Kernel& kernel = soc.kernels().by_name(point.kernel);
  sim::Rng rng(point.seed);
  soc::PreparedJob job = soc::prepare_workload(soc, kernel, point.n, soc.num_clusters(), rng);
  const offload::OffloadResult result = soc.run_offload(job.args, point.m);

  PointResult out;
  out.point = point;
  out.total = result.total();
  out.phases = result.phases();
  out.payload_words = result.payload_words;
  out.max_abs_error = job.max_abs_error(soc);
  out.degraded = result.recovery.degraded;
  out.watchdog_timeouts = result.recovery.watchdog_timeouts;
  out.retries = result.recovery.retries;
  if (out.max_abs_error > point.tolerance) {
    throw std::runtime_error(util::format(
        "SweepRunner: %s/%s n=%llu M=%u seed=%llu: result error %.3e exceeds tolerance %.3e",
        point.config_label.c_str(), point.kernel.c_str(),
        static_cast<unsigned long long>(point.n), point.m,
        static_cast<unsigned long long>(point.seed), out.max_abs_error, point.tolerance));
  }
  return out;
}

ResultSet SweepRunner::run(const ExperimentSpec& spec) {
  return run(spec.name, spec.points());
}

ResultSet SweepRunner::run(const std::string& name, const std::vector<RunPoint>& points) {
  std::vector<PointResult> rows = map(points, [this](const RunPoint& p) {
    PointResult r = run_point(p);
    note_cycles(r.total);
    return r;
  });
  return ResultSet(name, std::move(rows));
}

unsigned SweepRunner::jobs_from_args(int& argc, char** argv) {
  unsigned jobs = 1;
  if (const char* env = std::getenv("MCO_JOBS")) {
    jobs = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(arg + 7, nullptr, 10));
      continue;
    }
    if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return jobs;
}

}  // namespace mco::exp
