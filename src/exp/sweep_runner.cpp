#include "exp/sweep_runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/rng.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/strings.h"

namespace mco::exp {

SweepRunner::SweepRunner(unsigned jobs) : pool_(jobs) {}

PointResult SweepRunner::run_point(const RunPoint& point) {
  soc::Soc soc(point.cfg);
  const kernels::Kernel& kernel = soc.kernels().by_name(point.kernel);
  sim::Rng rng(point.seed);
  soc::PreparedJob job = soc::prepare_workload(soc, kernel, point.n, soc.num_clusters(), rng);
  const offload::OffloadResult result = soc.run_offload(job.args, point.m);

  PointResult out;
  out.point = point;
  out.total = result.total();
  out.phases = result.phases();
  out.payload_words = result.payload_words;
  out.max_abs_error = job.max_abs_error(soc);
  out.degraded = result.recovery.degraded;
  out.watchdog_timeouts = result.recovery.watchdog_timeouts;
  out.retries = result.recovery.retries;
  if (out.max_abs_error > point.tolerance) {
    throw std::runtime_error(util::format(
        "SweepRunner: %s/%s n=%llu M=%u seed=%llu: result error %.3e exceeds tolerance %.3e",
        point.config_label.c_str(), point.kernel.c_str(),
        static_cast<unsigned long long>(point.n), point.m,
        static_cast<unsigned long long>(point.seed), out.max_abs_error, point.tolerance));
  }
  return out;
}

ResultSet SweepRunner::run(const ExperimentSpec& spec) {
  return run(spec.name, spec.points());
}

ResultSet SweepRunner::run(const std::string& name, const std::vector<RunPoint>& points) {
  std::vector<PointResult> rows = map(points, [this](const RunPoint& p) {
    PointResult r = run_point(p);
    note_cycles(r.total);
    return r;
  });
  return ResultSet(name, std::move(rows));
}

unsigned SweepRunner::parse_jobs(const std::string& value) {
  const std::string v = util::trim(value);
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(util::format(
        "invalid --jobs value '%s': expected a decimal integer in [1, 1024]", value.c_str()));
  }
  char* end = nullptr;
  const unsigned long jobs = std::strtoul(v.c_str(), &end, 10);
  if (*end != '\0' || jobs < 1 || jobs > 1024) {
    throw std::invalid_argument(util::format(
        "invalid --jobs value '%s': expected a decimal integer in [1, 1024]", value.c_str()));
  }
  return static_cast<unsigned>(jobs);
}

unsigned SweepRunner::jobs_from_args(int& argc, char** argv) {
  const auto parse_or_die = [](const std::string& value) -> unsigned {
    try {
      return parse_jobs(value);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(2);
    }
  };
  unsigned jobs = 1;
  if (const char* env = std::getenv("MCO_JOBS")) {
    jobs = parse_or_die(env);
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = parse_or_die(arg + 7);
      continue;
    }
    if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs requires a value\n");
        std::exit(2);
      }
      jobs = parse_or_die(argv[i + 1]);
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return jobs;
}

}  // namespace mco::exp
