#include "exp/thread_pool.h"

#include <algorithm>

namespace mco::exp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  num_threads_ = threads;
  if (num_threads_ == 1) return;  // inline execution, no workers
  workers_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (num_threads_ == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    next_ = 0;
    in_flight_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return next_ >= count_ && in_flight_ == 0; });
  body_ = nullptr;
  count_ = 0;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (generation_ != seen_generation && next_ < count_);
    });
    if (shutdown_) return;
    seen_generation = generation_;
    while (next_ < count_) {
      const std::size_t i = next_++;
      ++in_flight_;
      lock.unlock();
      (*body_)(i);
      lock.lock();
      --in_flight_;
    }
    if (in_flight_ == 0) done_cv_.notify_all();
  }
}

}  // namespace mco::exp
