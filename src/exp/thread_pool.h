// Fixed-size worker pool for the experiment sweep engine.
//
// The pool hands out item *indices*, not results: callers pre-size an
// index-addressed output container and each worker writes only its own slot,
// so no ordering decision is ever made by the scheduler. That is what makes
// sweep output bit-identical for 1 worker and N workers — the parallelism is
// invisible in the results, it only moves wall-clock time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mco::exp {

/// A fixed set of worker threads executing "run body(i) for i in [0, count)"
/// jobs. Threads are started once in the constructor and joined in the
/// destructor; with 1 thread requested no threads are started at all and
/// work runs inline on the calling thread (a serial sweep has zero threading
/// machinery in its execution path).
class ThreadPool {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return num_threads_; }

  /// Run body(0) .. body(count-1) across the pool and block until all
  /// complete. Indices are claimed atomically in ascending order; `body`
  /// must confine its effects to index-addressed state (and must not throw —
  /// wrap exceptions into the per-index result instead, as
  /// SweepRunner::map does). Only one for_each_index may be active at a
  /// time per pool; concurrent calls serialize.
  void for_each_index(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  unsigned num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex run_mutex_;  ///< serializes concurrent for_each_index calls

  std::mutex mutex_;  ///< guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;     ///< next unclaimed index
  std::size_t in_flight_ = 0;  ///< indices claimed but not finished
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace mco::exp
