#include "host/host_core.h"

#include "util/math.h"

namespace mco::host {

HostCore::HostCore(sim::Simulator& sim, std::string name, HostConfig cfg,
                   InterruptController& intc, unsigned irq_line, Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg), intc_(intc), irq_line_(irq_line) {}

void HostCore::exec(sim::Cycles cycles, Thunk then) {
  busy_cycles_ += cycles;
  defer(cycles, std::move(then), sim::Priority::kCpu);
}

sim::Cycles HostCore::store_cost(std::size_t words) const {
  const util::Rate r{cfg_.store_cost_num, cfg_.store_cost_den};
  return r.cycles_for(words);
}

void HostCore::wait_for_irq(Thunk then) {
  // attach() fires immediately if the line is already pending; either way the
  // continuation pays WFI-exit + handler.
  intc_.attach(irq_line_, [this, cb = std::move(then)]() mutable {
    ++irqs_taken_;
    exec(cfg_.irq_take_cycles + cfg_.irq_handler_cycles, std::move(cb));
  });
}

void HostCore::poll_until(std::function<bool()> done, Thunk then) {
  const sim::Cycles iter = cfg_.hbm_load_cycles + cfg_.poll_loop_overhead;
  ++polls_;
  exec(iter, [this, d = std::move(done), cb = std::move(then)]() mutable {
    if (d()) {
      cb();
    } else {
      poll_until(std::move(d), std::move(cb));
    }
  });
}

}  // namespace mco::host
