#include "host/host_core.h"

#include <memory>

#include "util/math.h"

namespace mco::host {

HostCore::HostCore(sim::Simulator& sim, std::string name, HostConfig cfg,
                   InterruptController& intc, unsigned irq_line, Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg), intc_(intc), irq_line_(irq_line) {}

void HostCore::exec(sim::Cycles cycles, Thunk then) {
  busy_cycles_ += cycles;
  defer(cycles, std::move(then), sim::Priority::kCpu);
}

sim::Cycles HostCore::store_cost(std::size_t words) const {
  const util::Rate r{cfg_.store_cost_num, cfg_.store_cost_den};
  return r.cycles_for(words);
}

void HostCore::wait_for_irq(Thunk then) {
  // attach() fires immediately if the line is already pending; either way the
  // continuation pays WFI-exit + handler.
  intc_.attach(irq_line_, [this, cb = std::move(then)]() mutable {
    ++irqs_taken_;
    exec(cfg_.irq_take_cycles + cfg_.irq_handler_cycles, std::move(cb));
  });
}

void HostCore::poll_until(std::function<bool()> done, Thunk then) {
  const sim::Cycles iter = cfg_.hbm_load_cycles + cfg_.poll_loop_overhead;
  ++polls_;
  exec(iter, [this, d = std::move(done), cb = std::move(then)]() mutable {
    if (d()) {
      cb();
    } else {
      poll_until(std::move(d), std::move(cb));
    }
  });
}

void HostCore::wait_for_irq_or(sim::Cycles budget, TimedThunk then) {
  // Shared one-shot flag: whichever of {offload IRQ, watchdog timer} fires
  // first claims the continuation; the loser becomes a no-op.
  auto fired = std::make_shared<bool>(false);
  auto cb = std::make_shared<TimedThunk>(std::move(then));
  intc_.attach(irq_line_, [this, fired, cb] {
    if (*fired) return;
    *fired = true;
    ++irqs_taken_;
    exec(cfg_.irq_take_cycles + cfg_.irq_handler_cycles, [cb] { (*cb)(false); });
  });
  defer(budget,
        [this, fired, cb] {
          if (*fired) return;
          *fired = true;
          intc_.detach(irq_line_);
          ++irqs_taken_;  // the timer interrupt is taken like any other
          exec(cfg_.irq_take_cycles + cfg_.irq_handler_cycles, [cb] { (*cb)(true); });
        },
        sim::Priority::kCpu);
}

void HostCore::poll_until_or(std::function<bool()> done, sim::Cycles budget, TimedThunk then) {
  const sim::Cycles deadline = now() + budget;
  poll_until_or_loop(std::move(done), deadline, std::move(then));
}

void HostCore::poll_until_or_loop(std::function<bool()> done, sim::Cycles deadline,
                                  TimedThunk then) {
  const sim::Cycles iter = cfg_.hbm_load_cycles + cfg_.poll_loop_overhead;
  ++polls_;
  exec(iter, [this, d = std::move(done), deadline, cb = std::move(then)]() mutable {
    if (d()) {
      cb(false);
    } else if (now() >= deadline) {
      cb(true);
    } else {
      poll_until_or_loop(std::move(d), deadline, std::move(cb));
    }
  });
}

}  // namespace mco::host
