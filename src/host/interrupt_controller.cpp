#include "host/interrupt_controller.h"

#include <stdexcept>

#include "fault/fault_injector.h"

namespace mco::host {

InterruptController::InterruptController(sim::Simulator& sim, std::string name,
                                         unsigned num_lines, Component* parent)
    : Component(sim, std::move(name), parent), handlers_(num_lines), pending_(num_lines, false) {
  if (num_lines == 0) throw std::invalid_argument(path() + ": zero lines");
}

void InterruptController::attach(unsigned line, std::function<void()> handler) {
  if (line >= handlers_.size()) throw std::out_of_range(path() + ": bad line");
  if (pending_[line]) {
    pending_[line] = false;
    if (handler) handler();
    return;
  }
  handlers_[line] = std::move(handler);
}

void InterruptController::detach(unsigned line) {
  if (line >= handlers_.size()) throw std::out_of_range(path() + ": bad line");
  handlers_[line] = nullptr;
}

void InterruptController::raise(unsigned line) {
  if (line >= handlers_.size()) throw std::out_of_range(path() + ": bad line");
  if (fault_ && fault_->enabled() && fault_->on_irq()) {
    ++swallowed_;
    return;  // the edge is lost before the controller latches it
  }
  ++raises_;
  sim().trace().record(now(), path(), "irq");
  if (handlers_[line]) {
    auto h = std::move(handlers_[line]);
    handlers_[line] = nullptr;
    h();
  } else {
    pending_[line] = true;
  }
}

bool InterruptController::pending(unsigned line) const {
  if (line >= pending_.size()) throw std::out_of_range(path() + ": bad line");
  return pending_[line];
}

}  // namespace mco::host
