// CVA6-class host core model.
//
// The host executes the offload runtime as a chain of sequential timed
// operations (continuation-passing): each op costs some cycles and then runs
// the next step. This captures what matters for offload latency — the host
// is a single in-order instruction stream whose stores, loops and interrupt
// entry all serialize — without interpreting RISC-V instructions.
//
// The load-store unit carries the multicast-store extension flag: with it,
// the host can issue one store that the interconnect replicates to many
// clusters; without it, dispatch loops over unicast stores.
#pragma once

#include <cstdint>
#include <functional>

#include "host/interrupt_controller.h"
#include "sim/component.h"

namespace mco::host {

struct HostConfig {
  /// Cost of one mailbox/register store as seen by the issuing pipeline
  /// (non-posted write: issue + credit return), expressed as a rate so that
  /// multi-word sequences can cost fractional cycles per word on average.
  /// Default 3/2 = 1.5 cycles/word.
  std::uint64_t store_cost_num = 3;
  std::uint64_t store_cost_den = 2;
  /// Extra cycles to launch a multicast store (mask register setup).
  sim::Cycles multicast_issue_cycles = 2;
  /// Uncached load from HBM (polling the completion counter).
  sim::Cycles hbm_load_cycles = 36;
  /// Compare + branch + loop of the polling spin.
  sim::Cycles poll_loop_overhead = 2;
  /// WFI wakeup to first handler instruction.
  sim::Cycles irq_take_cycles = 20;
  /// Interrupt handler body (claim, acknowledge, return to runtime).
  sim::Cycles irq_handler_cycles = 52;
  /// Whether the LSU has the multicast-store extension.
  bool has_multicast_lsu = false;
};

class HostCore : public sim::Component {
 public:
  using Thunk = std::function<void()>;

  HostCore(sim::Simulator& sim, std::string name, HostConfig cfg,
           InterruptController& intc, unsigned irq_line, Component* parent = nullptr);

  const HostConfig& config() const { return cfg_; }

  /// Execute a step costing `cycles`, then continue with `then`.
  void exec(sim::Cycles cycles, Thunk then);

  /// Cost of storing `words` payload words to a mailbox window.
  sim::Cycles store_cost(std::size_t words) const;

  /// Enter WFI; `then` runs after the offload-completion IRQ is taken and
  /// the handler returns (irq_take + irq_handler cycles after the raise).
  /// If the IRQ already arrived (tiny job won the race), continues
  /// immediately with the same take+handler cost.
  void wait_for_irq(Thunk then);

  /// Busy-poll: every iteration costs hbm_load_cycles + poll_loop_overhead
  /// and evaluates `done`; when `done()` returns true, `then` runs at the
  /// end of that iteration. The first check happens after one full
  /// iteration (load-compare-branch), like the compiled spin loop would.
  void poll_until(std::function<bool()> done, Thunk then);

  using TimedThunk = std::function<void(bool timed_out)>;

  /// wait_for_irq with a watchdog: if the IRQ has not arrived within
  /// `budget` cycles, the core programs a timer, exits WFI on the timer
  /// interrupt instead, detaches the offload-IRQ handler and continues with
  /// timed_out=true (paying the same take+handler cost — the timer path goes
  /// through the same trap entry). A late offload IRQ then merely latches
  /// pending. Exactly one of the two continuations runs.
  void wait_for_irq_or(sim::Cycles budget, TimedThunk then);

  /// poll_until with a deadline: iterations proceed as in poll_until, but if
  /// `done` is still false once `budget` cycles have elapsed, the loop exits
  /// and continues with timed_out=true. The deadline check rides the
  /// existing compare-branch (no extra per-iteration cost).
  void poll_until_or(std::function<bool()> done, sim::Cycles budget, TimedThunk then);

  std::uint64_t busy_cycles() const { return busy_cycles_; }
  std::uint64_t polls() const { return polls_; }
  std::uint64_t irqs_taken() const { return irqs_taken_; }

 private:
  void poll_until_or_loop(std::function<bool()> done, sim::Cycles deadline, TimedThunk then);

  HostConfig cfg_;
  InterruptController& intc_;
  unsigned irq_line_;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t irqs_taken_ = 0;
};

}  // namespace mco::host
