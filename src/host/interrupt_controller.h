// Host interrupt controller (PLIC-flavoured, reduced to what offload needs).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/component.h"

namespace mco::host {

/// Level-style interrupt lines with per-line handlers. A raise on a line with
/// no handler is latched pending and delivered when a handler attaches —
/// mirroring how a core that has not reached WFI yet still sees the IRQ.
class InterruptController : public sim::Component {
 public:
  InterruptController(sim::Simulator& sim, std::string name, unsigned num_lines,
                      Component* parent = nullptr);

  /// Attach a one-shot handler to `line`. If the line is already pending the
  /// handler fires immediately (same cycle).
  void attach(unsigned line, std::function<void()> handler);

  /// Assert `line`.
  void raise(unsigned line);

  bool pending(unsigned line) const;
  std::uint64_t raises() const { return raises_; }

 private:
  std::vector<std::function<void()>> handlers_;
  std::vector<bool> pending_;
  std::uint64_t raises_ = 0;
};

}  // namespace mco::host
