// Host interrupt controller (PLIC-flavoured, reduced to what offload needs).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/component.h"

namespace mco::fault {
class FaultInjector;
}

namespace mco::host {

/// Level-style interrupt lines with per-line handlers. A raise on a line with
/// no handler is latched pending and delivered when a handler attaches —
/// mirroring how a core that has not reached WFI yet still sees the IRQ.
class InterruptController : public sim::Component {
 public:
  InterruptController(sim::Simulator& sim, std::string name, unsigned num_lines,
                      Component* parent = nullptr);

  /// Wire the fault injector (nullptr = fault-free). Raises then consult it
  /// and may be swallowed (lost edge: no handler call, no pending latch).
  void set_fault_injector(fault::FaultInjector* fi) { fault_ = fi; }

  /// Attach a one-shot handler to `line`. If the line is already pending the
  /// handler fires immediately (same cycle).
  void attach(unsigned line, std::function<void()> handler);

  /// Remove the handler on `line` without firing it. Used when the host's
  /// watchdog gives up on the IRQ and falls back to probing; a stale raise
  /// after detach latches pending as usual.
  void detach(unsigned line);

  /// Assert `line`.
  void raise(unsigned line);

  std::uint64_t irqs_swallowed() const { return swallowed_; }

  bool pending(unsigned line) const;
  std::uint64_t raises() const { return raises_; }

 private:
  fault::FaultInjector* fault_ = nullptr;
  std::vector<std::function<void()>> handlers_;
  std::vector<bool> pending_;
  std::uint64_t raises_ = 0;
  std::uint64_t swallowed_ = 0;
};

}  // namespace mco::host
