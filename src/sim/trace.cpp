#include "sim/trace.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/strings.h"

namespace mco::sim {

void TraceSink::emit(TraceRecord rec) {
  if (observer_) observer_(rec);
  if (enabled_) records_.push_back(std::move(rec));
}

void TraceSink::record(Cycle time, const std::string& who, const std::string& what,
                       const std::string& detail) {
  if (!armed()) return;
  emit(TraceRecord{time, TracePhase::kInstant, who, what, detail});
}

void TraceSink::begin_span(Cycle time, const std::string& who, const std::string& what,
                           const std::string& detail) {
  if (!armed()) return;
  open_.push_back(OpenSpan{who, what});
  emit(TraceRecord{time, TracePhase::kBegin, who, what, detail});
}

void TraceSink::end_span(Cycle time, const std::string& who) {
  if (!armed()) return;
  // Innermost open span on this track: topmost stack entry with matching who.
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->who != who) continue;
    emit(TraceRecord{time, TracePhase::kEnd, who, it->what, ""});
    open_.erase(std::next(it).base());
    return;
  }
  throw std::logic_error("TraceSink: end_span('" + who + "') without an open span");
}

std::size_t TraceSink::open_spans(const std::string& who) const {
  std::size_t n = 0;
  for (const auto& o : open_) {
    if (o.who == who) ++n;
  }
  return n;
}

bool TraceSink::balanced() const { return open_.empty(); }

void TraceSink::clear() {
  records_.clear();
  open_.clear();
}

std::vector<TraceRecord> TraceSink::filter(const std::string& what) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.what == what) out.push_back(r);
  }
  return out;
}

std::vector<TraceSink::SpanView> TraceSink::all_spans() const {
  // Replay the stream with a per-track stack, pairing each end with the
  // innermost begin on its track (the same discipline end_span enforces).
  std::vector<SpanView> out;
  std::vector<std::size_t> stack;  // indices into records_ of open begins
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TraceRecord& r = records_[i];
    if (r.phase == TracePhase::kBegin) {
      stack.push_back(i);
    } else if (r.phase == TracePhase::kEnd) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        const TraceRecord& b = records_[*it];
        if (b.who != r.who) continue;
        out.push_back(SpanView{b.time, r.time, b.who, b.what, b.detail});
        stack.erase(std::next(it).base());
        break;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanView& a, const SpanView& b) { return a.begin < b.begin; });
  return out;
}

std::vector<TraceSink::SpanView> TraceSink::spans(const std::string& what) const {
  std::vector<SpanView> out;
  for (auto& s : all_spans()) {
    if (s.what == what) out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> TraceSink::span_names() const {
  std::set<std::string> names;
  for (const auto& r : records_) {
    if (r.phase == TracePhase::kBegin) names.insert(r.what);
  }
  return {names.begin(), names.end()};
}

std::string TraceSink::to_csv() const {
  std::string out = "time,phase,who,what,detail\n";
  for (const auto& r : records_) {
    out += util::format("%llu,%c,%s,%s,%s\n", static_cast<unsigned long long>(r.time),
                        static_cast<char>(r.phase), r.who.c_str(), r.what.c_str(),
                        r.detail.c_str());
  }
  return out;
}

}  // namespace mco::sim
