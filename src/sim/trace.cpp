#include "sim/trace.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mco::sim {

const std::vector<DispatchInfo>& dispatch_reference() {
  // Single source of truth for the sink's dispatch paths. The docs
  // cross-check (scripts/check_metrics_docs.py) compares this table against
  // docs/performance.md's dispatch cost table — extend both together.
  static const std::vector<DispatchInfo> kReference = {
      {"compiled_out", "MCO_FAST builds: armed() is compile-time false and recording folds away"},
      {"dormant", "armed() reads one cached bool; string_view parameters allocate nothing"},
      {"observer_raw", "flattened function-pointer fan-out into a reused scratch record"},
      {"observer_boxed", "std::function compatibility adapter forwarding through the raw path"},
      {"storage", "who/what/detail interned into the arena; compact records, lazy records()"},
  };
  return kReference;
}

void TraceSink::set_observer(Observer obs) {
  if (!obs) {
    set_observer(nullptr, nullptr);
    return;
  }
  boxed_ = std::make_unique<Observer>(std::move(obs));
  observer_fn_ = [](void* ctx, const TraceRecord& rec) { (*static_cast<Observer*>(ctx))(rec); };
  observer_ctx_ = boxed_.get();
  rearm();
}

namespace {

/// std::string_view{} carries a null data(); never hand that to string ops.
void assign_sv(std::string& dst, std::string_view s) {
  dst.clear();
  if (!s.empty()) dst.append(s.data(), s.size());
}

}  // namespace

std::string_view TraceSink::intern(std::string_view s) {
  if (s.empty()) return std::string_view{"", 0};
  const auto it = interned_.find(s);
  if (it != interned_.end()) return *it;
  const std::string_view stable = arena_.copy(s);
  interned_.insert(stable);
  return stable;
}

void TraceSink::emit(Cycle time, TracePhase phase, std::string_view who, std::string_view what,
                     std::string_view detail) {
  if (observer_fn_ != nullptr) {
    scratch_.time = time;
    scratch_.phase = phase;
    assign_sv(scratch_.who, who);
    assign_sv(scratch_.what, what);
    assign_sv(scratch_.detail, detail);
    observer_fn_(observer_ctx_, scratch_);
  }
  if (enabled_)
    compact_.push_back(CompactRecord{time, phase, intern(who), intern(what), intern(detail)});
}

void TraceSink::begin_span(Cycle time, std::string_view who, std::string_view what,
                           std::string_view detail) {
  if (!armed()) return;
  // Intern the track/name regardless of storage so the open-span stack owns
  // stable views even on the observer-only path.
  open_.push_back(OpenSpan{intern(who), intern(what)});
  emit(time, TracePhase::kBegin, who, what, detail);
}

void TraceSink::end_span(Cycle time, std::string_view who) {
  if (!armed()) return;
  // Innermost open span on this track: topmost stack entry with matching who.
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->who != who) continue;
    const std::string_view what = it->what;
    open_.erase(std::next(it).base());
    emit(time, TracePhase::kEnd, who, what, {});
    return;
  }
  throw std::logic_error("TraceSink: end_span('" + std::string(who) + "') without an open span");
}

std::size_t TraceSink::open_spans(std::string_view who) const {
  std::size_t n = 0;
  for (const auto& o : open_) {
    if (o.who == who) ++n;
  }
  return n;
}

bool TraceSink::balanced() const { return open_.empty(); }

const std::vector<TraceRecord>& TraceSink::records() const {
  // Materialize only what appeared since the last call.
  for (std::size_t i = cache_.size(); i < compact_.size(); ++i) {
    const CompactRecord& c = compact_[i];
    cache_.push_back(TraceRecord{c.time, c.phase, std::string(c.who), std::string(c.what),
                                 std::string(c.detail)});
  }
  return cache_;
}

void TraceSink::clear() {
  compact_.clear();
  cache_.clear();
  open_.clear();
  interned_.clear();
  arena_.reset();  // chunks are retained: a clear/refill cycle reallocates nothing
}

std::vector<TraceRecord> TraceSink::filter(std::string_view what) const {
  std::vector<TraceRecord> out;
  for (const auto& c : compact_) {
    if (c.what == what)
      out.push_back(
          TraceRecord{c.time, c.phase, std::string(c.who), std::string(c.what), std::string(c.detail)});
  }
  return out;
}

std::vector<TraceSink::SpanView> TraceSink::all_spans() const {
  // Replay the stream with a per-track stack, pairing each end with the
  // innermost begin on its track (the same discipline end_span enforces).
  std::vector<SpanView> out;
  std::vector<std::size_t> stack;  // indices into compact_ of open begins
  for (std::size_t i = 0; i < compact_.size(); ++i) {
    const CompactRecord& r = compact_[i];
    if (r.phase == TracePhase::kBegin) {
      stack.push_back(i);
    } else if (r.phase == TracePhase::kEnd) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        const CompactRecord& b = compact_[*it];
        if (b.who != r.who) continue;
        out.push_back(SpanView{b.time, r.time, std::string(b.who), std::string(b.what),
                               std::string(b.detail)});
        stack.erase(std::next(it).base());
        break;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanView& a, const SpanView& b) { return a.begin < b.begin; });
  return out;
}

std::vector<TraceSink::SpanView> TraceSink::spans(std::string_view what) const {
  std::vector<SpanView> out;
  for (auto& s : all_spans()) {
    if (s.what == what) out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> TraceSink::span_names() const {
  std::set<std::string, std::less<>> names;
  for (const auto& r : compact_) {
    if (r.phase == TracePhase::kBegin) names.emplace(r.what);
  }
  return {names.begin(), names.end()};
}

std::string TraceSink::to_csv() const {
  std::string out = "time,phase,who,what,detail\n";
  for (const auto& r : compact_) {
    out += std::to_string(r.time);
    out += ',';
    out += static_cast<char>(r.phase);
    out += ',';
    out.append(r.who.data(), r.who.size());
    out += ',';
    out.append(r.what.data(), r.what.size());
    out += ',';
    out.append(r.detail.data(), r.detail.size());
    out += '\n';
  }
  return out;
}

}  // namespace mco::sim
