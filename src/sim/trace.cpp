#include "sim/trace.h"

#include "util/strings.h"

namespace mco::sim {

void TraceSink::record(Cycle time, const std::string& who, const std::string& what,
                       const std::string& detail) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{time, who, what, detail});
}

std::vector<TraceRecord> TraceSink::filter(const std::string& what) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.what == what) out.push_back(r);
  }
  return out;
}

std::string TraceSink::to_csv() const {
  std::string out = "time,who,what,detail\n";
  for (const auto& r : records_) {
    out += util::format("%llu,%s,%s,%s\n", static_cast<unsigned long long>(r.time), r.who.c_str(),
                        r.what.c_str(), r.detail.c_str());
  }
  return out;
}

}  // namespace mco::sim
