// Discrete-event simulation kernel.
//
// The kernel executes events ordered by (time, priority, insertion
// sequence). Same-cycle events therefore execute in a deterministic order:
// lower priority value first, FIFO among equals. Determinism is a hard
// requirement — the paper's experiments are cycle-exact comparisons between
// two designs, and every run of a given configuration must produce identical
// cycle counts.
//
// Two engines implement that contract (docs/performance.md has the model):
//  * EngineKind::kFast (default) — calendar/bucketed queue (sim/event_queue)
//    with O(1) amortized push/pop and inline-storage EventFn callables
//    (sim/small_fn), so the steady-state event loop performs no heap
//    allocation and no comparator calls;
//  * EngineKind::kLegacyHeap — the original comparator heap over
//    std::function events, kept verbatim as the reference implementation.
//    bench_simspeed (E21) measures the fast engine against it, and the
//    cross-engine equivalence tests pin both to identical cycle counts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/small_fn.h"
#include "sim/time.h"

namespace mco::sim {

class Logger;
class StatsRegistry;
class TraceSink;

/// Scheduling priority for same-cycle events. Lower runs first.
enum class Priority : std::uint8_t {
  kWire = 0,      // combinational notifications (IRQ wires, counter triggers)
  kMemory = 1,    // memory/DMA beat processing
  kDefault = 2,   // ordinary component behaviour
  kCpu = 3,       // host/core instruction-level actions
  kPostlude = 4,  // end-of-cycle bookkeeping, stats sampling
};

/// Which event-loop implementation a Simulator runs on.
enum class EngineKind : std::uint8_t {
  kFast = 0,        ///< calendar queue + EventFn (the default)
  kLegacyHeap = 1,  ///< pre-optimization comparator heap (reference/benchmark)
};

/// The simulation kernel.
class Simulator {
 public:
  explicit Simulator(EngineKind engine = EngineKind::kFast);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  EngineKind engine() const { return engine_; }

  /// Current simulation time.
  Cycle now() const { return now_; }

  /// Schedule `fn` to run at absolute cycle `t` (must be >= now()).
  ///
  /// Any void() callable works. The fast engine stores it in an EventFn
  /// (64-byte inline buffer, heap only on spill — counted); the legacy engine
  /// stores a std::function exactly as the original kernel did.
  template <typename F>
  void schedule_at(Cycle t, F&& fn, Priority prio = Priority::kDefault) {
    if (engine_ == EngineKind::kLegacyHeap) {
      legacy_schedule(t, wrap_legacy(std::forward<F>(fn)), prio);
    } else {
      fast_schedule(t, EventFn(std::forward<F>(fn)), prio);
    }
  }

  /// Schedule `fn` to run `delay` cycles from now.
  template <typename F>
  void schedule_in(Cycles delay, F&& fn, Priority prio = Priority::kDefault) {
    schedule_at(now_ + delay, std::forward<F>(fn), prio);
  }

  /// Same-cycle commit-order exploration hook (see check::ScheduleExplorer).
  ///
  /// The kernel's default tie-break for events sharing (time, priority) is
  /// FIFO by insertion sequence. When a permuter is set, every such group of
  /// simultaneously-ready events is drained as a batch and the permuter may
  /// reorder `order` (initially the identity over [0, k)); events then commit
  /// in the permuted order. Events the batch itself schedules at the same
  /// (time, priority) form the *next* batch — they were not ready together
  /// with the current one. An unset permuter (the default) leaves the FIFO
  /// path untouched, bit-identical to a kernel built without the hook.
  using CommitPermuter =
      std::function<void(Cycle time, Priority prio, std::vector<std::size_t>& order)>;
  void set_commit_permuter(CommitPermuter permuter) { permuter_ = std::move(permuter); }
  bool has_commit_permuter() const { return static_cast<bool>(permuter_); }

  /// Run until the event queue drains. Returns the final time.
  Cycle run();

  /// Run until `t` (inclusive) or until the queue drains, whichever first.
  Cycle run_until(Cycle t);

  /// Execute exactly one event. Returns false if the queue was empty.
  bool step();

  /// True if no events are pending.
  bool idle() const { return pending() == 0; }

  /// Number of pending events.
  std::size_t pending() const {
    return engine_ == EngineKind::kLegacyHeap ? legacy_queue_.size() + legacy_batch_.size()
                                              : calendar_.size() + batch_.size();
  }

  /// Total events executed so far (for kernel self-tests / budgets).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Fast-engine events whose capture exceeded EventFn's inline buffer and
  /// spilled to the heap. bench_simspeed reports this; the SoC workloads keep
  /// it at zero, which is what makes the fast loop allocation-free.
  std::uint64_t event_heap_spills() const { return event_heap_spills_; }

  /// Abort the run loop from inside an event (e.g. deadlock watchdog).
  void stop() { stop_requested_ = true; }

  Logger& logger() { return *logger_; }
  StatsRegistry& stats() { return *stats_; }
  TraceSink& trace() { return *trace_; }

 private:
  // ---- legacy engine (pre-optimization heap, kept verbatim) ----
  struct LegacyEvent {
    Cycle time;
    Priority prio;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct LegacyLater {
    bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.prio != b.prio) return a.prio > b.prio;
      return a.seq > b.seq;
    }
  };

  /// Box an arbitrary callable into the legacy engine's std::function.
  /// Copyable callables box directly (the original kernel's behaviour);
  /// move-only ones ride a shared_ptr since std::function requires copies.
  template <typename F>
  static std::function<void()> wrap_legacy(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (std::is_copy_constructible_v<Fn>) {
      return std::function<void()>(std::forward<F>(fn));
    } else {
      auto sp = std::make_shared<Fn>(std::forward<F>(fn));
      return std::function<void()>([sp] { (*sp)(); });
    }
  }

  void legacy_schedule(Cycle t, std::function<void()> fn, Priority prio);
  bool legacy_step();

  // ---- fast engine ----
  struct BatchedEvent {
    Cycle time;
    Priority prio;
    EventFn fn;
  };

  void fast_schedule(Cycle t, EventFn fn, Priority prio);
  bool fast_step();

  /// Earliest pending time across queue and batch, or kCycleMax when idle.
  Cycle peek_time() const;

  EngineKind engine_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_heap_spills_ = 0;
  bool stop_requested_ = false;

  CalendarQueue calendar_;
  /// Permuted same-(time, priority) events awaiting commit (permuter mode
  /// only; always empty on the default FIFO path).
  std::deque<BatchedEvent> batch_;

  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, LegacyLater> legacy_queue_;
  std::deque<LegacyEvent> legacy_batch_;

  CommitPermuter permuter_;
  std::unique_ptr<Logger> logger_;
  std::unique_ptr<StatsRegistry> stats_;
  std::unique_ptr<TraceSink> trace_;
};

}  // namespace mco::sim
