// Discrete-event simulation kernel.
//
// The kernel owns an event queue ordered by (time, priority, insertion
// sequence). Same-cycle events therefore execute in a deterministic order:
// lower priority value first, FIFO among equals. Determinism is a hard
// requirement — the paper's experiments are cycle-exact comparisons between
// two designs, and every run of a given configuration must produce identical
// cycle counts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mco::sim {

class Logger;
class StatsRegistry;
class TraceSink;

/// Scheduling priority for same-cycle events. Lower runs first.
enum class Priority : std::uint8_t {
  kWire = 0,      // combinational notifications (IRQ wires, counter triggers)
  kMemory = 1,    // memory/DMA beat processing
  kDefault = 2,   // ordinary component behaviour
  kCpu = 3,       // host/core instruction-level actions
  kPostlude = 4,  // end-of-cycle bookkeeping, stats sampling
};

/// The simulation kernel.
class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Cycle now() const { return now_; }

  /// Schedule `fn` to run at absolute cycle `t` (must be >= now()).
  void schedule_at(Cycle t, std::function<void()> fn, Priority prio = Priority::kDefault);

  /// Schedule `fn` to run `delay` cycles from now.
  void schedule_in(Cycles delay, std::function<void()> fn, Priority prio = Priority::kDefault);

  /// Same-cycle commit-order exploration hook (see check::ScheduleExplorer).
  ///
  /// The kernel's default tie-break for events sharing (time, priority) is
  /// FIFO by insertion sequence. When a permuter is set, every such group of
  /// simultaneously-ready events is drained as a batch and the permuter may
  /// reorder `order` (initially the identity over [0, k)); events then commit
  /// in the permuted order. Events the batch itself schedules at the same
  /// (time, priority) form the *next* batch — they were not ready together
  /// with the current one. An unset permuter (the default) leaves the FIFO
  /// path untouched, bit-identical to a kernel built without the hook.
  using CommitPermuter =
      std::function<void(Cycle time, Priority prio, std::vector<std::size_t>& order)>;
  void set_commit_permuter(CommitPermuter permuter) { permuter_ = std::move(permuter); }
  bool has_commit_permuter() const { return static_cast<bool>(permuter_); }

  /// Run until the event queue drains. Returns the final time.
  Cycle run();

  /// Run until `t` (inclusive) or until the queue drains, whichever first.
  Cycle run_until(Cycle t);

  /// Execute exactly one event. Returns false if the queue was empty.
  bool step();

  /// True if no events are pending.
  bool idle() const { return queue_.empty() && batch_.empty(); }

  /// Number of pending events.
  std::size_t pending() const { return queue_.size() + batch_.size(); }

  /// Total events executed so far (for kernel self-tests / budgets).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Abort the run loop from inside an event (e.g. deadlock watchdog).
  void stop() { stop_requested_ = true; }

  Logger& logger() { return *logger_; }
  StatsRegistry& stats() { return *stats_; }
  TraceSink& trace() { return *trace_; }

 private:
  struct Event {
    Cycle time;
    Priority prio;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.prio != b.prio) return a.prio > b.prio;
      return a.seq > b.seq;
    }
  };

  /// Execute one already-popped event.
  void execute(Event ev);

  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  CommitPermuter permuter_;
  /// Permuted same-(time, priority) events awaiting commit (permuter mode
  /// only; always empty on the default FIFO path).
  std::deque<Event> batch_;
  std::unique_ptr<Logger> logger_;
  std::unique_ptr<StatsRegistry> stats_;
  std::unique_ptr<TraceSink> trace_;
};

}  // namespace mco::sim
