#include "sim/arena.h"

#include <cstring>

namespace mco::sim {

namespace {

/// Offset >= `used` at which an allocation from `base` is `align`-aligned.
std::size_t aligned_offset(const unsigned char* base, std::size_t used, std::size_t align) {
  const std::size_t addr = reinterpret_cast<std::size_t>(base) + used;
  const std::size_t aligned = (addr + align - 1) & ~(align - 1);
  return used + (aligned - addr);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

unsigned char* Arena::reserve(std::size_t bytes, std::size_t align) {
  if (align == 0) align = 1;
  while (current_ < chunks_.size()) {
    Chunk& c = chunks_[current_];
    const std::size_t at = aligned_offset(c.data.get(), used_, align);
    if (at + bytes <= c.size) {
      used_ = at;
      return c.data.get() + at;
    }
    ++current_;
    used_ = 0;
  }
  // No retained chunk fits: grow one (oversized requests get their own).
  Chunk c;
  c.size = bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
  c.data = std::make_unique<unsigned char[]>(c.size);
  capacity_ += c.size;
  chunks_.push_back(std::move(c));
  current_ = chunks_.size() - 1;
  used_ = aligned_offset(chunks_[current_].data.get(), 0, align);
  return chunks_[current_].data.get() + used_;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  const std::size_t take = bytes == 0 ? 1 : bytes;
  unsigned char* p = reserve(take, align);
  used_ += take;
  allocated_ += take;
  return p;
}

std::string_view Arena::copy(std::string_view s) {
  // Always return a valid (non-null) pointer: callers hand these views to
  // std::string operations, where a null data() is undefined behaviour.
  if (s.empty()) return std::string_view{"", 0};
  char* p = static_cast<char*>(allocate(s.size(), 1));
  std::memcpy(p, s.data(), s.size());
  return {p, s.size()};
}

void Arena::reset() {
  current_ = 0;
  used_ = 0;
  allocated_ = 0;
}

}  // namespace mco::sim
