// Leveled logging attached to a Simulator.
#pragma once

#include <functional>
#include <string>

#include "sim/time.h"

namespace mco::sim {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

const char* to_string(LogLevel level);

/// Per-simulator logger. Off by default (benches run thousands of
/// simulations); tests and examples can raise the level or install a sink.
class Logger {
 public:
  using Sink = std::function<void(Cycle, LogLevel, const std::string& who, const std::string&)>;

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  /// Replace the output sink (default writes to stderr).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  void log(Cycle t, LogLevel level, const std::string& who, const std::string& msg);

  std::uint64_t records_emitted() const { return emitted_; }

 private:
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
  std::uint64_t emitted_ = 0;
};

}  // namespace mco::sim
