#include "sim/stats.h"

#include "util/strings.h"

namespace mco::sim {

void Accumulator::sample(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  sum_ += v;
  ++n_;
}

void Accumulator::reset() {
  n_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Counter& StatsRegistry::counter(const std::string& name) { return counters_[name]; }

Accumulator& StatsRegistry::accumulator(const std::string& name) { return accumulators_[name]; }

std::uint64_t StatsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::string> StatsRegistry::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  return out;
}

std::vector<std::string> StatsRegistry::accumulator_names() const {
  std::vector<std::string> out;
  out.reserve(accumulators_.size());
  for (const auto& [k, v] : accumulators_) out.push_back(k);
  return out;
}

std::string StatsRegistry::dump_csv() const {
  std::string out = "stat,value\n";
  for (const auto& [k, v] : counters_) {
    out += util::format("%s,%llu\n", k.c_str(), static_cast<unsigned long long>(v.value()));
  }
  for (const auto& [k, v] : accumulators_) {
    out += util::format("%s.mean,%.6g\n", k.c_str(), v.mean());
  }
  return out;
}

void StatsRegistry::reset_all() {
  for (auto& [k, v] : counters_) v.reset();
  for (auto& [k, v] : accumulators_) v.reset();
}

}  // namespace mco::sim
