#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace mco::sim {

void Accumulator::sample(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  sum_ += v;
  ++n_;
}

void Accumulator::reset() {
  n_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : bucket_width_(bucket_width), buckets_(num_buckets, 0) {
  if (bucket_width <= 0.0) throw std::invalid_argument("Histogram: non-positive bucket width");
  if (num_buckets == 0) throw std::invalid_argument("Histogram: zero buckets");
}

void Histogram::sample(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  sum_ += v;
  ++n_;
  if (v < 0.0) {
    ++buckets_[0];  // durations are non-negative by construction; clamp
    return;
  }
  const auto idx = static_cast<std::size_t>(v / bucket_width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

double Histogram::percentile(double p) const {
  if (n_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Rank of the target sample (1-based, ceil): the smallest bucket whose
  // cumulative count reaches it bounds the value from above.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      const double upper = static_cast<double>(i + 1) * bucket_width_;
      return std::min(std::max(upper, min_), max_);
    }
  }
  return max_;  // rank lands in the saturation bucket: exact max
}

void Histogram::reset() {
  buckets_.assign(buckets_.size(), 0);
  overflow_ = 0;
  n_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Counter& StatsRegistry::counter(const std::string& name) { return counters_[name]; }

Accumulator& StatsRegistry::accumulator(const std::string& name) { return accumulators_[name]; }

Histogram& StatsRegistry::histogram(const std::string& name, double bucket_width,
                                    std::size_t num_buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(bucket_width, num_buckets)).first->second;
}

std::uint64_t StatsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Histogram* StatsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::string> StatsRegistry::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  return out;
}

std::vector<std::string> StatsRegistry::accumulator_names() const {
  std::vector<std::string> out;
  out.reserve(accumulators_.size());
  for (const auto& [k, v] : accumulators_) out.push_back(k);
  return out;
}

std::vector<std::string> StatsRegistry::histogram_names() const {
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [k, v] : histograms_) out.push_back(k);
  return out;
}

std::string StatsRegistry::dump_csv() const {
  std::string out = "stat,value\n";
  for (const auto& [k, v] : counters_) {
    out += util::format("%s,%llu\n", k.c_str(), static_cast<unsigned long long>(v.value()));
  }
  for (const auto& [k, v] : accumulators_) {
    out += util::format("%s.mean,%.6g\n", k.c_str(), v.mean());
  }
  return out;
}

namespace {
std::string json_number(double v) {
  // Integral doubles print without an exponent/fraction so cycle counts
  // stay exact and diff-able in goldens.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    return util::format("%lld", static_cast<long long>(v));
  }
  return util::format("%.9g", v);
}
}  // namespace

std::string StatsRegistry::metrics_to_json() const {
  std::string out = "{\n  \"schema\": \"mco-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    out += util::format("%s\n    \"%s\": %llu", first ? "" : ",", k.c_str(),
                        static_cast<unsigned long long>(v.value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"accumulators\": {";
  first = true;
  for (const auto& [k, v] : accumulators_) {
    out += util::format(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, \"mean\": %s, \"min\": %s, "
        "\"max\": %s}",
        first ? "" : ",", k.c_str(), static_cast<unsigned long long>(v.count()),
        json_number(v.sum()).c_str(), json_number(v.mean()).c_str(),
        json_number(v.min()).c_str(), json_number(v.max()).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [k, v] : histograms_) {
    std::string buckets;
    for (std::size_t i = 0; i < v.buckets().size(); ++i) {
      buckets += util::format("%s%llu", i ? "," : "",
                              static_cast<unsigned long long>(v.buckets()[i]));
    }
    out += util::format(
        "%s\n    \"%s\": {\"count\": %llu, \"min\": %s, \"max\": %s, \"mean\": %s, "
        "\"p50\": %s, \"p95\": %s, \"p99\": %s, \"overflow\": %llu, "
        "\"bucket_width\": %s, \"buckets\": [%s]}",
        first ? "" : ",", k.c_str(), static_cast<unsigned long long>(v.count()),
        json_number(v.min()).c_str(), json_number(v.max()).c_str(),
        json_number(v.mean()).c_str(), json_number(v.p50()).c_str(),
        json_number(v.p95()).c_str(), json_number(v.p99()).c_str(),
        static_cast<unsigned long long>(v.overflow()), json_number(v.bucket_width()).c_str(),
        buckets.c_str());
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string StatsRegistry::metrics_to_csv() const {
  std::string out = "metric,value\n";
  for (const auto& [k, v] : counters_) {
    out += util::format("%s,%llu\n", k.c_str(), static_cast<unsigned long long>(v.value()));
  }
  for (const auto& [k, v] : accumulators_) {
    out += util::format("%s.count,%llu\n", k.c_str(),
                        static_cast<unsigned long long>(v.count()));
    out += util::format("%s.mean,%s\n", k.c_str(), json_number(v.mean()).c_str());
    out += util::format("%s.min,%s\n", k.c_str(), json_number(v.min()).c_str());
    out += util::format("%s.max,%s\n", k.c_str(), json_number(v.max()).c_str());
  }
  for (const auto& [k, v] : histograms_) {
    out += util::format("%s.count,%llu\n", k.c_str(),
                        static_cast<unsigned long long>(v.count()));
    out += util::format("%s.mean,%s\n", k.c_str(), json_number(v.mean()).c_str());
    out += util::format("%s.min,%s\n", k.c_str(), json_number(v.min()).c_str());
    out += util::format("%s.max,%s\n", k.c_str(), json_number(v.max()).c_str());
    out += util::format("%s.p50,%s\n", k.c_str(), json_number(v.p50()).c_str());
    out += util::format("%s.p95,%s\n", k.c_str(), json_number(v.p95()).c_str());
    out += util::format("%s.p99,%s\n", k.c_str(), json_number(v.p99()).c_str());
    out += util::format("%s.overflow,%llu\n", k.c_str(),
                        static_cast<unsigned long long>(v.overflow()));
  }
  return out;
}

void StatsRegistry::reset_all() {
  for (auto& [k, v] : counters_) v.reset();
  for (auto& [k, v] : accumulators_) v.reset();
  for (auto& [k, v] : histograms_) v.reset();
}

}  // namespace mco::sim
