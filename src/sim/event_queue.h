// Calendar (bucketed) event queue for the fast simulation engine.
//
// The comparator heap the kernel started with costs O(log n) compares per
// push/pop and one std::function heap allocation per fat capture. This queue
// replaces both with O(1) amortized operations built on three tiers:
//
//  * a 1024-slot wheel indexed by `time & (1024-1)`, holding every pending
//    event whose time lies within the window [now, now + 1024). Because the
//    simulation executes strictly in time order, all resident times lie in
//    that window at every instant, so each occupied slot maps to exactly ONE
//    cycle — slot collisions are impossible and a slot is a plain FIFO vector;
//  * an occupancy bitmap (16 × uint64) over the wheel, scanned circularly
//    from `now & mask` with count-trailing-zeros: the first set bit in
//    circular order is the minimum pending time, found in ≤ 17 word reads;
//  * an overflow std::map<Cycle, vector> for the rare event scheduled ≥ 1024
//    cycles out (watchdogs, deadline horizons). Entries load directly into
//    the active cycle when their time comes; because `now` is monotone, all
//    overflow pushes for a cycle precede all wheel pushes for it, so loading
//    overflow-then-wheel preserves global insertion order exactly.
//
// When a cycle becomes current it is split into five priority lanes (one per
// sim::Priority value, FIFO within each). Popping the lowest non-empty lane —
// rescanning from lane 0 every pop — reproduces the heap's
// (time, priority, sequence) order bit-exactly, including events a running
// event schedules at the current cycle: they append to their lane and are
// seen by the very next pop, exactly where the heap's sequence counter would
// have placed them. No sequence numbers are stored at all; FIFO order is
// structural. Slot and lane vectors keep their capacity across cycles, so the
// steady state allocates nothing.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace mco::sim {

enum class Priority : std::uint8_t;  // defined in sim/simulator.h

class CalendarQueue {
 public:
  static constexpr std::size_t kWheelSlots = 1024;  ///< window width, power of two
  static constexpr std::size_t kNumLanes = 5;       ///< one per Priority value

  CalendarQueue();

  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Insert an event at absolute time `t` (caller guarantees t >= now).
  void push(Cycle now, Cycle t, Priority prio, EventFn fn);

  /// Earliest pending time, or kCycleMax when empty. `now` seeds the wheel
  /// scan; it must not exceed any pending time.
  Cycle next_time(Cycle now) const;

  /// Remove and return the globally next event in (time, priority, FIFO)
  /// order, reporting its time and priority. Precondition: !empty().
  EventFn pop(Cycle now, Cycle* time, Priority* prio);

  /// Events still pending at the same (time, priority) as the event pop()
  /// just returned — the commit-permuter's ready group. Valid only
  /// immediately after pop(), before any push at a different cycle.
  std::size_t ready_count(Priority prio) const;

  /// FIFO-extract one event from the ready group (see ready_count()).
  EventFn pop_ready(Priority prio);

 private:
  struct Pending {
    Priority prio;
    EventFn fn;
  };
  struct Slot {
    Cycle time = 0;  ///< meaningful only while the occupancy bit is set
    std::vector<Pending> items;
  };
  struct Lane {
    std::vector<EventFn> q;
    std::size_t head = 0;
  };

  static constexpr std::size_t kMask = kWheelSlots - 1;
  static constexpr std::size_t kWords = kWheelSlots / 64;

  /// Minimum time resident in the wheel, or kCycleMax if the wheel is empty.
  Cycle wheel_next(Cycle now) const;

  /// Split the earliest pending cycle into the priority lanes.
  void load_next(Cycle now);

  void lane_push(Priority prio, EventFn fn);

  std::array<Slot, kWheelSlots> slots_;
  std::array<std::uint64_t, kWords> bitmap_{};
  std::map<Cycle, std::vector<Pending>> overflow_;

  std::array<Lane, kNumLanes> lanes_;
  Cycle active_time_ = 0;
  bool active_loaded_ = false;
  std::size_t active_count_ = 0;

  std::size_t size_ = 0;
};

}  // namespace mco::sim
