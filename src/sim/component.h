// Component base class: named nodes in the SoC hierarchy.
#pragma once

#include <string>
#include <vector>

#include "sim/logger.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace mco::sim {

/// A named simulation component.
///
/// Components form a tree (SoC → cluster[3] → core[5], …) whose paths name
/// statistics, log records and trace entries, e.g. "soc.cluster3.dma".
/// Components are neither copyable nor movable: wiring holds raw pointers and
/// the owner (the SoC builder) guarantees lifetimes.
class Component {
 public:
  Component(Simulator& sim, std::string name, Component* parent = nullptr);
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  Simulator& sim() const { return sim_; }
  const std::string& name() const { return name_; }
  Component* parent() const { return parent_; }

  /// Dot-separated path from the root, e.g. "soc.cluster0.tcdm".
  const std::string& path() const { return path_; }

  /// Current simulation time (convenience).
  Cycle now() const { return sim_.now(); }

  const std::vector<Component*>& children() const { return children_; }

 protected:
  /// Schedule a member action `delay` cycles from now. The callable goes
  /// straight into the kernel's EventFn — no std::function boxing on the way.
  template <typename F>
  void defer(Cycles delay, F&& fn, Priority prio = Priority::kDefault) {
    sim_.schedule_in(delay, std::forward<F>(fn), prio);
  }

 private:
  Simulator& sim_;
  std::string name_;
  Component* parent_;
  std::string path_;
  std::vector<Component*> children_;
};

}  // namespace mco::sim
