// Statistics: named counters, scalar samples and fixed-bucket histograms,
// registered per component and exportable as one JSON/CSV document.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mco::sim {

/// Monotonic event counter ("hbm.beats_served", "noc.multicasts", …).
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates scalar samples and exposes min/max/mean.
class Accumulator {
 public:
  void sample(double v);
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset();

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket latency/duration histogram with percentile readout.
///
/// `num_buckets` linear buckets of `bucket_width` each cover
/// [0, num_buckets*bucket_width); samples at or beyond the range land in a
/// saturation (overflow) bucket. Exact min/max/sum are tracked alongside, so
/// max() is exact even for saturated samples and percentile estimates are
/// clamped into [min, max] — a single-sample histogram reports that sample
/// for every percentile. Sampling is O(1) and never touches the simulator's
/// event queue, so instrumentation cannot shift a cycle.
class Histogram {
 public:
  Histogram() : Histogram(64.0, 64) {}
  Histogram(double bucket_width, std::size_t num_buckets);

  void sample(double v);

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Estimated value at percentile `p` in [0, 100]: upper edge of the bucket
  /// holding the p-th sample, clamped to the exact [min, max]. Empty
  /// histogram → 0. Saturated ranks report max() exactly.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  double bucket_width() const { return bucket_width_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  /// Samples that saturated past the bucketed range.
  std::uint64_t overflow() const { return overflow_; }

  void reset();

 private:
  double bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Registry of all statistics in one simulation, keyed by "path.stat" names.
///
/// Components create their stats through the registry so benches can dump a
/// complete inventory without knowing every component type.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name);
  Accumulator& accumulator(const std::string& name);
  /// Find-or-create; width/buckets only apply on creation (references into
  /// the registry stay valid for the registry's lifetime, so components
  /// cache them at construction and sample without a map lookup).
  Histogram& histogram(const std::string& name, double bucket_width = 64.0,
                       std::size_t num_buckets = 64);

  /// Value of a counter, or 0 if it does not exist (missing stats read as 0
  /// so tests can assert "no multicasts happened" uniformly).
  std::uint64_t counter_value(const std::string& name) const;

  bool has_counter(const std::string& name) const { return counters_.count(name) != 0; }
  bool has_histogram(const std::string& name) const { return histograms_.count(name) != 0; }
  /// The histogram, or nullptr if never registered.
  const Histogram* find_histogram(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> accumulator_names() const;
  std::vector<std::string> histogram_names() const;

  /// Render "name,value" lines for all counters (deterministic order).
  std::string dump_csv() const;

  /// The single machine-readable export surface: every counter, accumulator
  /// and histogram in one JSON document (schema "mco-metrics-v1", keys in
  /// deterministic sorted order). Histograms carry count/min/max/mean,
  /// p50/p95/p99, the saturation count and the raw buckets.
  std::string metrics_to_json() const;

  /// Flat CSV of the same inventory: one `metric,value` row per scalar
  /// (histograms/accumulators expand to name.count, name.mean, name.p50, …).
  std::string metrics_to_csv() const;

  void reset_all();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accumulators_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mco::sim
