// Statistics: named counters and scalar samples, registered per component.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mco::sim {

/// Monotonic event counter ("hbm.beats_served", "noc.multicasts", …).
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates scalar samples and exposes min/max/mean.
class Accumulator {
 public:
  void sample(double v);
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset();

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Registry of all statistics in one simulation, keyed by "path.stat" names.
///
/// Components create their stats through the registry so benches can dump a
/// complete inventory without knowing every component type.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name);
  Accumulator& accumulator(const std::string& name);

  /// Value of a counter, or 0 if it does not exist (missing stats read as 0
  /// so tests can assert "no multicasts happened" uniformly).
  std::uint64_t counter_value(const std::string& name) const;

  bool has_counter(const std::string& name) const { return counters_.count(name) != 0; }

  std::vector<std::string> counter_names() const;
  std::vector<std::string> accumulator_names() const;

  /// Render "name,value" lines for all counters (deterministic order).
  std::string dump_csv() const;

  void reset_all();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accumulators_;
};

}  // namespace mco::sim
