#include "sim/rng.h"

#include <cassert>

namespace mco::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

}  // namespace mco::sim
