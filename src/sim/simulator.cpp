#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

#include "sim/logger.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace mco::sim {

Simulator::Simulator()
    : logger_(std::make_unique<Logger>()),
      stats_(std::make_unique<StatsRegistry>()),
      trace_(std::make_unique<TraceSink>()) {}

Simulator::~Simulator() = default;

void Simulator::schedule_at(Cycle t, std::function<void()> fn, Priority prio) {
  if (t < now_) throw std::logic_error("Simulator::schedule_at: time in the past");
  queue_.push(Event{t, prio, next_seq_++, std::move(fn)});
}

void Simulator::schedule_in(Cycles delay, std::function<void()> fn, Priority prio) {
  schedule_at(now_ + delay, std::move(fn), prio);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event must be copied out before
  // pop. Move the callable via const_cast — safe because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

Cycle Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
  return now_;
}

Cycle Simulator::run_until(Cycle t) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (now_ < t && queue_.empty()) {
    // Advance time even if nothing happened, so callers can reason about it.
    now_ = t;
  }
  return now_;
}

}  // namespace mco::sim
