#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

#include "sim/logger.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace mco::sim {

namespace {

/// Validate a permuter's output and raise the shared diagnostics.
void check_permutation(const std::vector<std::size_t>& order, std::size_t expected) {
  if (order.size() != expected)
    throw std::logic_error("Simulator: commit permuter changed the batch size");
  std::vector<bool> seen(expected, false);
  for (const std::size_t idx : order) {
    if (idx >= expected || seen[idx])
      throw std::logic_error("Simulator: commit permuter returned an invalid permutation");
    seen[idx] = true;
  }
}

}  // namespace

Simulator::Simulator(EngineKind engine)
    : engine_(engine),
      logger_(std::make_unique<Logger>()),
      stats_(std::make_unique<StatsRegistry>()),
      trace_(std::make_unique<TraceSink>()) {}

Simulator::~Simulator() = default;

// ---------------------------------------------------------------- fast engine

void Simulator::fast_schedule(Cycle t, EventFn fn, Priority prio) {
  if (t < now_) throw std::logic_error("Simulator::schedule_at: time in the past");
  if (!fn.inline_stored()) ++event_heap_spills_;
  calendar_.push(now_, t, prio, std::move(fn));
}

bool Simulator::fast_step() {
  if (!batch_.empty()) {
    BatchedEvent ev = std::move(batch_.front());
    batch_.pop_front();
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  if (calendar_.empty()) return false;
  Cycle t;
  Priority p;
  EventFn fn = calendar_.pop(now_, &t, &p);
  if (permuter_ && calendar_.ready_count(p) > 0) {
    // Exploration mode: the rest of lane p IS the set of events ready at the
    // same (time, priority) — drain it and commit in the permuter's order.
    // Lone events skip this path, so the common case stays allocation-free.
    std::vector<BatchedEvent> ready;
    ready.push_back(BatchedEvent{t, p, std::move(fn)});
    while (calendar_.ready_count(p) > 0)
      ready.push_back(BatchedEvent{t, p, calendar_.pop_ready(p)});
    std::vector<std::size_t> order(ready.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    permuter_(t, p, order);
    check_permutation(order, ready.size());
    for (const std::size_t idx : order) batch_.push_back(std::move(ready[idx]));
    BatchedEvent ev = std::move(batch_.front());
    batch_.pop_front();
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  assert(t >= now_);
  now_ = t;
  ++events_executed_;
  fn();
  return true;
}

// -------------------------------------------------------------- legacy engine

void Simulator::legacy_schedule(Cycle t, std::function<void()> fn, Priority prio) {
  if (t < now_) throw std::logic_error("Simulator::schedule_at: time in the past");
  legacy_queue_.push(LegacyEvent{t, prio, next_seq_++, std::move(fn)});
}

bool Simulator::legacy_step() {
  if (!legacy_batch_.empty()) {
    LegacyEvent ev = std::move(legacy_batch_.front());
    legacy_batch_.pop_front();
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  if (legacy_queue_.empty()) return false;
  // priority_queue::top returns const&; the event must be copied out before
  // pop. Move the callable via const_cast — safe because we pop immediately.
  LegacyEvent ev = std::move(const_cast<LegacyEvent&>(legacy_queue_.top()));
  legacy_queue_.pop();
  if (permuter_ && !legacy_queue_.empty() && legacy_queue_.top().time == ev.time &&
      legacy_queue_.top().prio == ev.prio) {
    // Exploration mode: drain every event ready at the same (time, priority)
    // and commit them in the permuter's order.
    std::vector<LegacyEvent> ready;
    ready.push_back(std::move(ev));
    while (!legacy_queue_.empty() && legacy_queue_.top().time == ready.front().time &&
           legacy_queue_.top().prio == ready.front().prio) {
      ready.push_back(std::move(const_cast<LegacyEvent&>(legacy_queue_.top())));
      legacy_queue_.pop();
    }
    std::vector<std::size_t> order(ready.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    permuter_(ready.front().time, ready.front().prio, order);
    check_permutation(order, ready.size());
    for (const std::size_t idx : order) legacy_batch_.push_back(std::move(ready[idx]));
    ev = std::move(legacy_batch_.front());
    legacy_batch_.pop_front();
  }
  assert(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

// ------------------------------------------------------------------ run loops

bool Simulator::step() {
  return engine_ == EngineKind::kLegacyHeap ? legacy_step() : fast_step();
}

Cycle Simulator::peek_time() const {
  if (engine_ == EngineKind::kLegacyHeap) {
    if (!legacy_batch_.empty()) return legacy_batch_.front().time;
    if (!legacy_queue_.empty()) return legacy_queue_.top().time;
    return kCycleMax;
  }
  if (!batch_.empty()) return batch_.front().time;
  if (!calendar_.empty()) return calendar_.next_time(now_);
  return kCycleMax;
}

Cycle Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
  return now_;
}

Cycle Simulator::run_until(Cycle t) {
  stop_requested_ = false;
  while (!stop_requested_) {
    if (idle()) break;
    const Cycle next = peek_time();
    if (next > t) break;
    step();
  }
  if (now_ < t && idle()) {
    // Advance time even if nothing happened, so callers can reason about it.
    now_ = t;
  }
  return now_;
}

}  // namespace mco::sim
