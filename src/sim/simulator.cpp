#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

#include "sim/logger.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace mco::sim {

Simulator::Simulator()
    : logger_(std::make_unique<Logger>()),
      stats_(std::make_unique<StatsRegistry>()),
      trace_(std::make_unique<TraceSink>()) {}

Simulator::~Simulator() = default;

void Simulator::schedule_at(Cycle t, std::function<void()> fn, Priority prio) {
  if (t < now_) throw std::logic_error("Simulator::schedule_at: time in the past");
  queue_.push(Event{t, prio, next_seq_++, std::move(fn)});
}

void Simulator::schedule_in(Cycles delay, std::function<void()> fn, Priority prio) {
  schedule_at(now_ + delay, std::move(fn), prio);
}

void Simulator::execute(Event ev) {
  assert(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
}

bool Simulator::step() {
  if (!batch_.empty()) {
    Event ev = std::move(batch_.front());
    batch_.pop_front();
    execute(std::move(ev));
    return true;
  }
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event must be copied out before
  // pop. Move the callable via const_cast — safe because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  if (permuter_ && !queue_.empty() && queue_.top().time == ev.time &&
      queue_.top().prio == ev.prio) {
    // Exploration mode: drain every event ready at the same (time, priority)
    // and commit them in the permuter's order. Lone events skip this path,
    // so the common case stays allocation-free.
    std::vector<Event> ready;
    ready.push_back(std::move(ev));
    while (!queue_.empty() && queue_.top().time == ready.front().time &&
           queue_.top().prio == ready.front().prio) {
      ready.push_back(std::move(const_cast<Event&>(queue_.top())));
      queue_.pop();
    }
    std::vector<std::size_t> order(ready.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    permuter_(ready.front().time, ready.front().prio, order);
    if (order.size() != ready.size())
      throw std::logic_error("Simulator: commit permuter changed the batch size");
    std::vector<bool> seen(ready.size(), false);
    for (const std::size_t idx : order) {
      if (idx >= ready.size() || seen[idx])
        throw std::logic_error("Simulator: commit permuter returned an invalid permutation");
      seen[idx] = true;
      batch_.push_back(std::move(ready[idx]));
    }
    ev = std::move(batch_.front());
    batch_.pop_front();
  }
  execute(std::move(ev));
  return true;
}

Cycle Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
  return now_;
}

Cycle Simulator::run_until(Cycle t) {
  stop_requested_ = false;
  while (!stop_requested_) {
    Cycle next;
    if (!batch_.empty()) {
      next = batch_.front().time;
    } else if (!queue_.empty()) {
      next = queue_.top().time;
    } else {
      break;
    }
    if (next > t) break;
    step();
  }
  if (now_ < t && idle()) {
    // Advance time even if nothing happened, so callers can reason about it.
    now_ = t;
  }
  return now_;
}

}  // namespace mco::sim
