// Chunked bump allocator for simulation-lifetime objects.
//
// The simulator's hottest allocation patterns are many small, same-lifetime
// objects: interned trace strings, per-run scratch. An Arena hands them out
// by bumping a pointer through fixed-size chunks and frees them all at once.
//
// Lifetime rules (docs/performance.md documents the same contract):
//   * allocate()/copy() results stay valid until reset() or destruction —
//     there is no per-object free;
//   * reset() invalidates every outstanding pointer but RETAINS the chunk
//     memory, so a reset-reuse cycle (e.g. TraceSink::clear() between runs)
//     allocates from the OS only on the first pass;
//   * the arena is not thread-safe; confine it to one simulation like every
//     other sim-layer object (the Soc "many concurrent instances" contract).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace mco::sim {

class Arena {
 public:
  /// Chunks of `chunk_bytes` each; oversized requests get a dedicated chunk.
  explicit Arena(std::size_t chunk_bytes = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with `align` alignment. Never returns nullptr
  /// (throws std::bad_alloc on OS exhaustion); zero-byte requests get a
  /// distinct valid pointer.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Copy `s` into the arena and return a view of the stable copy.
  std::string_view copy(std::string_view s);

  /// Invalidate everything allocated so far but keep the chunks for reuse.
  void reset();

  /// Bytes handed out since construction or the last reset().
  std::size_t bytes_allocated() const { return allocated_; }
  /// Chunks currently owned (monotone until destruction; reset() keeps them).
  std::size_t chunks() const { return chunks_.size(); }
  /// Total chunk capacity owned (reused across reset() cycles).
  std::size_t capacity() const { return capacity_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  /// Make the current chunk able to hold `bytes` more (aligned); may advance
  /// to a retained chunk or grow a new one.
  unsigned char* reserve(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t current_ = 0;  ///< chunk being bumped (valid when !chunks_.empty())
  std::size_t used_ = 0;     ///< bump offset within chunks_[current_]
  std::size_t allocated_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace mco::sim
