// Deterministic pseudo-random number generation (xoshiro256**).
//
// Used only for workload generation (input vectors, randomized property
// tests); the simulator itself is fully deterministic and consumes no
// randomness.
#pragma once

#include <cstdint>

namespace mco::sim {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded via
/// splitmix64 so any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

 private:
  std::uint64_t s_[4];
};

}  // namespace mco::sim
