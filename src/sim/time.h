// Simulation time base.
//
// The testbench (as in the paper) drives all clocks at 1 GHz, so one cycle is
// one nanosecond and all reported runtimes are in 1:1 correspondence with CPU
// cycles. Everything in the simulator is expressed in cycles.
#pragma once

#include <cstdint>
#include <limits>

namespace mco::sim {

/// Absolute simulation time, in clock cycles.
using Cycle = std::uint64_t;

/// A duration, in clock cycles.
using Cycles = std::uint64_t;

inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/// Nominal clock frequency used when converting cycles to wall time.
inline constexpr double kClockHz = 1.0e9;

/// Convert a cycle count to nanoseconds at the nominal 1 GHz clock.
constexpr double cycles_to_ns(Cycles c) { return static_cast<double>(c) * (1.0e9 / kClockHz); }

}  // namespace mco::sim
