#include "sim/logger.h"

#include <cstdio>

namespace mco::sim {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::log(Cycle t, LogLevel level, const std::string& who, const std::string& msg) {
  if (!enabled(level)) return;
  ++emitted_;
  if (sink_) {
    sink_(t, level, who, msg);
    return;
  }
  std::fprintf(stderr, "[%10llu] %-5s %s: %s\n", static_cast<unsigned long long>(t),
               to_string(level), who.c_str(), msg.c_str());
}

}  // namespace mco::sim
