// Structured event trace: the simulator's equivalent of an RTL waveform dump.
//
// Two record kinds share one time-ordered stream:
//  * instants  — point events ("doorbell", "credit", "irq");
//  * spans     — begin/end duration pairs ("marshal", "dma_in", "wait"),
//    nestable per component track. Spans let the Chrome/Perfetto export
//    render the offload's phase budget (Eq. 1: dispatch / execution /
//    synchronization) as stacked duration bars instead of a picket fence of
//    instants.
//
// The sink is disabled by default and every recording call is a cheap
// early-return in that state. Recording never schedules simulator events, so
// attaching (or detaching) the sink cannot move a single cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mco::sim {

/// Record kind, matching the Chrome Trace Event "ph" values we export.
enum class TracePhase : char {
  kInstant = 'i',
  kBegin = 'B',
  kEnd = 'E',
};

/// One trace record: at cycle `time`, component `who` did `what` (detail).
struct TraceRecord {
  Cycle time = 0;
  TracePhase phase = TracePhase::kInstant;
  std::string who;
  std::string what;
  std::string detail;
};

/// In-memory trace sink. Disabled by default; offload-phase instrumentation
/// and the trace_inspect example enable it to reconstruct offload timelines.
class TraceSink {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Live record observer (the check::ProtocolMonitor's tap). When set, every
  /// record produced is forwarded to the observer as it happens — even with
  /// storage disabled, so a monitor can watch an arbitrarily long run in
  /// bounded memory. Recording stays side-effect-free on simulated time: the
  /// observer must not schedule events (monitors only accumulate state).
  using Observer = std::function<void(const TraceRecord&)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }
  bool has_observer() const { return static_cast<bool>(observer_); }

  /// True when records are produced at all (stored, observed, or both).
  bool armed() const { return enabled_ || has_observer(); }

  /// Record an instant event.
  void record(Cycle time, const std::string& who, const std::string& what,
              const std::string& detail = "");

  /// Open a duration span named `what` on component track `who`. Spans on
  /// the same track nest: a later begin_span opens a child of the still-open
  /// span. Every begin must be balanced by an end_span on the same track.
  void begin_span(Cycle time, const std::string& who, const std::string& what,
                  const std::string& detail = "");

  /// Close the innermost open span on track `who` (its name is taken from
  /// the matching begin). Throws std::logic_error if no span is open on that
  /// track — an unbalanced end is always an instrumentation bug.
  void end_span(Cycle time, const std::string& who);

  /// Number of spans currently open on `who`'s track (0 = balanced).
  std::size_t open_spans(const std::string& who) const;
  /// True when every begun span has been ended, across all tracks.
  bool balanced() const;

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear();

  /// All records whose `what` matches exactly, in time order.
  std::vector<TraceRecord> filter(const std::string& what) const;

  /// Begin records whose `what` matches, paired with their computed
  /// duration — the timeline query tests and benches use to read off a
  /// phase budget without parsing JSON.
  struct SpanView {
    Cycle begin = 0;
    Cycle end = 0;
    std::string who;
    std::string what;
    std::string detail;
    Cycles duration() const { return end - begin; }
  };
  std::vector<SpanView> spans(const std::string& what) const;
  /// Every closed span, in begin-time order.
  std::vector<SpanView> all_spans() const;

  /// Distinct span names seen so far (sorted) — the docs cross-check walks
  /// this to ensure every emitted span is documented.
  std::vector<std::string> span_names() const;

  /// Render as CSV (time,phase,who,what,detail).
  std::string to_csv() const;

 private:
  struct OpenSpan {
    std::string who;
    std::string what;  ///< name from the begin record (ends inherit it)
  };

  /// Store (when enabled) and/or forward (when observed) one record.
  void emit(TraceRecord rec);

  bool enabled_ = false;
  Observer observer_;
  std::vector<TraceRecord> records_;
  /// Stack of open spans across all tracks (per-track nesting falls out of
  /// matching ends by `who` from the top down).
  std::vector<OpenSpan> open_;
};

}  // namespace mco::sim
