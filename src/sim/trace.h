// Structured event trace: the simulator's equivalent of an RTL waveform dump.
//
// Two record kinds share one time-ordered stream:
//  * instants  — point events ("doorbell", "credit", "irq");
//  * spans     — begin/end duration pairs ("marshal", "dma_in", "wait"),
//    nestable per component track. Spans let the Chrome/Perfetto export
//    render the offload's phase budget (Eq. 1: dispatch / execution /
//    synchronization) as stacked duration bars instead of a picket fence of
//    instants.
//
// The sink is disabled by default and every recording call is a cheap
// early-return in that state. Recording never schedules simulator events, so
// attaching (or detaching) the sink cannot move a single cycle.
//
// Dispatch paths, cheapest first (docs/performance.md has the cost table;
// dispatch_reference() below is the machine-checked catalog):
//  * compiled_out — MCO_FAST builds: armed() is a compile-time false, every
//    recording call folds to nothing and armed()-guarded detail formatting
//    at call sites is dead-code-eliminated;
//  * dormant      — armed() reads one cached bool and returns. Parameters
//    are string_views, so dormant call sites build no std::string
//    temporaries;
//  * observer_raw — a flattened function-pointer + context fan-out
//    (no std::function indirection); the record is materialized into a
//    reused scratch buffer, so steady-state observation does not allocate;
//  * observer_boxed — std::function compatibility adapter over the raw path;
//  * storage      — enabled sinks intern who/what/detail into an arena
//    (deduplicated) and store compact string_view records; the public
//    records() vector materializes lazily on first access.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/arena.h"
#include "sim/time.h"

namespace mco::sim {

/// Record kind, matching the Chrome Trace Event "ph" values we export.
enum class TracePhase : char {
  kInstant = 'i',
  kBegin = 'B',
  kEnd = 'E',
};

/// One trace record: at cycle `time`, component `who` did `what` (detail).
struct TraceRecord {
  Cycle time = 0;
  TracePhase phase = TracePhase::kInstant;
  std::string who;
  std::string what;
  std::string detail;
};

/// Catalog entry for one TraceSink dispatch path (name + one-line cost
/// statement). docs/performance.md documents the same names;
/// scripts/check_metrics_docs.py cross-checks the two.
struct DispatchInfo {
  const char* name;
  const char* statement;
};
const std::vector<DispatchInfo>& dispatch_reference();

/// In-memory trace sink. Disabled by default; offload-phase instrumentation
/// and the trace_inspect example enable it to reconstruct offload timelines.
class TraceSink {
 public:
  /// True in MCO_FAST builds: tracing is compiled out of the inner loop and
  /// armed() is a compile-time false.
#ifdef MCO_FAST
  static constexpr bool kCompiledOut = true;
#else
  static constexpr bool kCompiledOut = false;
#endif

  void enable(bool on = true) {
    enabled_ = kCompiledOut ? false : on;
    rearm();
  }
  bool enabled() const { return enabled_; }

  /// Live record observer (the check::ProtocolMonitor's tap). When set, every
  /// record produced is forwarded to the observer as it happens — even with
  /// storage disabled, so a monitor can watch an arbitrarily long run in
  /// bounded memory. Recording stays side-effect-free on simulated time: the
  /// observer must not schedule events (monitors only accumulate state).
  ///
  /// The raw overload is the flattened fast path: one indirect call through a
  /// plain function pointer. The std::function overload is a compatibility
  /// adapter that boxes the callable and forwards through the same pointer.
  using ObserverFn = void (*)(void* ctx, const TraceRecord& rec);
  void set_observer(ObserverFn fn, void* ctx) {
    boxed_ = nullptr;
    observer_fn_ = fn;
    observer_ctx_ = ctx;
    rearm();
  }
  using Observer = std::function<void(const TraceRecord&)>;
  void set_observer(Observer obs);
  bool has_observer() const { return observer_fn_ != nullptr; }

  /// True when records are produced at all (stored, observed, or both).
  /// A cached bool in normal builds; constant false under MCO_FAST, so
  /// `if (trace.armed()) { ...format detail... }` blocks vanish entirely.
  bool armed() const {
#ifdef MCO_FAST
    return false;
#else
    return armed_;
#endif
  }

  /// Record an instant event.
  void record(Cycle time, std::string_view who, std::string_view what,
              std::string_view detail = {}) {
    if (!armed()) return;
    emit(time, TracePhase::kInstant, who, what, detail);
  }

  /// Open a duration span named `what` on component track `who`. Spans on
  /// the same track nest: a later begin_span opens a child of the still-open
  /// span. Every begin must be balanced by an end_span on the same track.
  void begin_span(Cycle time, std::string_view who, std::string_view what,
                  std::string_view detail = {});

  /// Close the innermost open span on track `who` (its name is taken from
  /// the matching begin). Throws std::logic_error if no span is open on that
  /// track — an unbalanced end is always an instrumentation bug.
  void end_span(Cycle time, std::string_view who);

  /// Number of spans currently open on `who`'s track (0 = balanced).
  std::size_t open_spans(std::string_view who) const;
  /// True when every begun span has been ended, across all tracks.
  bool balanced() const;

  /// Stored records, materialized lazily from the compact arena-backed form.
  const std::vector<TraceRecord>& records() const;
  void clear();

  /// Number of stored records (without materializing the records() cache).
  std::size_t stored() const { return compact_.size(); }
  /// Arena bytes backing the interned strings (bench/test introspection).
  std::size_t interned_bytes() const { return arena_.bytes_allocated(); }

  /// All records whose `what` matches exactly, in time order.
  std::vector<TraceRecord> filter(std::string_view what) const;

  /// Begin records whose `what` matches, paired with their computed
  /// duration — the timeline query tests and benches use to read off a
  /// phase budget without parsing JSON.
  struct SpanView {
    Cycle begin = 0;
    Cycle end = 0;
    std::string who;
    std::string what;
    std::string detail;
    Cycles duration() const { return end - begin; }
  };
  std::vector<SpanView> spans(std::string_view what) const;
  /// Every closed span, in begin-time order.
  std::vector<SpanView> all_spans() const;

  /// Distinct span names seen so far (sorted) — the docs cross-check walks
  /// this to ensure every emitted span is documented.
  std::vector<std::string> span_names() const;

  /// Render as CSV (time,phase,who,what,detail).
  std::string to_csv() const;

 private:
  /// Storage form: string_views into the intern arena. 48 bytes per record
  /// versus three std::strings, and repeated who/what/detail values share
  /// one interned copy.
  struct CompactRecord {
    Cycle time;
    TracePhase phase;
    std::string_view who;
    std::string_view what;
    std::string_view detail;
  };
  struct OpenSpan {
    std::string_view who;   ///< interned (stable until clear())
    std::string_view what;  ///< name from the begin record (ends inherit it)
  };

  void rearm() { armed_ = enabled_ || observer_fn_ != nullptr; }

  /// Deduplicated copy of `s` owned by the arena (stable until clear()).
  std::string_view intern(std::string_view s);

  /// Forward (when observed) and/or store (when enabled) one record.
  void emit(Cycle time, TracePhase phase, std::string_view who, std::string_view what,
            std::string_view detail);

  bool enabled_ = false;
  bool armed_ = false;
  ObserverFn observer_fn_ = nullptr;
  void* observer_ctx_ = nullptr;
  std::unique_ptr<Observer> boxed_;  ///< keeps a boxed std::function observer alive
  TraceRecord scratch_;              ///< reused for observer fan-out (no per-record allocs)

  Arena arena_;
  std::unordered_set<std::string_view> interned_;
  std::vector<CompactRecord> compact_;
  /// Stack of open spans across all tracks (per-track nesting falls out of
  /// matching ends by `who` from the top down).
  std::vector<OpenSpan> open_;

  /// Lazy materialization of compact_ for the records() API; grown
  /// incrementally, so repeated records() calls mid-run stay cheap.
  mutable std::vector<TraceRecord> cache_;
};

}  // namespace mco::sim
