// Structured event trace: the simulator's equivalent of an RTL waveform dump.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mco::sim {

/// One trace record: at cycle `time`, component `who` did `what` (detail).
struct TraceRecord {
  Cycle time = 0;
  std::string who;
  std::string what;
  std::string detail;
};

/// In-memory trace sink. Disabled by default; offload-phase instrumentation
/// and the trace_inspect example enable it to reconstruct offload timelines.
class TraceSink {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Cycle time, const std::string& who, const std::string& what,
              const std::string& detail = "");

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// All records whose `what` matches exactly, in time order.
  std::vector<TraceRecord> filter(const std::string& what) const;

  /// Render as CSV (time,who,what,detail).
  std::string to_csv() const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace mco::sim
