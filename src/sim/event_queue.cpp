#include "sim/event_queue.h"

#include <cassert>

namespace mco::sim {

namespace {

int trailing_zeros(std::uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(word);
#else
  int n = 0;
  while ((word & 1u) == 0) {
    word >>= 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace

CalendarQueue::CalendarQueue() = default;

void CalendarQueue::lane_push(Priority prio, EventFn fn) {
  lanes_[static_cast<std::size_t>(prio)].q.push_back(std::move(fn));
  ++active_count_;
}

void CalendarQueue::push(Cycle now, Cycle t, Priority prio, EventFn fn) {
  assert(t >= now);
  ++size_;
  if (active_loaded_ && t == active_time_) {
    // The cycle being executed right now: the event joins its lane directly,
    // behind everything already pending there — structural FIFO.
    lane_push(prio, std::move(fn));
    return;
  }
  if (t - now < kWheelSlots) {
    Slot& s = slots_[static_cast<std::size_t>(t) & kMask];
    const std::size_t word = (static_cast<std::size_t>(t) & kMask) >> 6;
    const std::uint64_t bit = 1ull << (static_cast<std::size_t>(t) & 63u);
    if ((bitmap_[word] & bit) == 0) {
      bitmap_[word] |= bit;
      s.time = t;
    }
    assert(s.time == t && "calendar slot collision — window invariant broken");
    s.items.push_back(Pending{prio, std::move(fn)});
    return;
  }
  overflow_[t].push_back(Pending{prio, std::move(fn)});
}

Cycle CalendarQueue::wheel_next(Cycle now) const {
  // First set bit in circular slot order starting at now&mask is the minimum
  // resident time, because slot→time is monotone in circular distance.
  const std::size_t start = static_cast<std::size_t>(now) & kMask;
  std::size_t w = start >> 6;
  const std::size_t start_bit = start & 63u;
  std::uint64_t word = bitmap_[w] & (~0ull << start_bit);
  for (std::size_t i = 0; i < kWords; ++i) {
    if (word != 0) {
      const std::size_t slot = (w << 6) + static_cast<std::size_t>(trailing_zeros(word));
      return slots_[slot].time;
    }
    w = (w + 1) & (kWords - 1);
    word = bitmap_[w];
  }
  // Wrapped all the way: only the skipped low bits of the start word remain.
  word = start_bit == 0 ? 0ull : (bitmap_[start >> 6] & ((1ull << start_bit) - 1));
  if (word != 0) {
    const std::size_t slot = ((start >> 6) << 6) + static_cast<std::size_t>(trailing_zeros(word));
    return slots_[slot].time;
  }
  return kCycleMax;
}

Cycle CalendarQueue::next_time(Cycle now) const {
  if (active_loaded_ && active_count_ > 0) return active_time_;
  Cycle best = wheel_next(now);
  if (!overflow_.empty() && overflow_.begin()->first < best) best = overflow_.begin()->first;
  return best;
}

void CalendarQueue::load_next(Cycle now) {
  assert(size_ > 0);
  assert(active_count_ == 0);
  const Cycle c = next_time(now);
  assert(c != kCycleMax);
  active_time_ = c;
  active_loaded_ = true;
  // Overflow entries for this cycle were all pushed while c was ≥ 1024 cycles
  // out — strictly before any wheel entry for c existed — so they come first.
  auto it = overflow_.begin();
  if (it != overflow_.end() && it->first == c) {
    for (Pending& p : it->second) lane_push(p.prio, std::move(p.fn));
    overflow_.erase(it);
  }
  const std::size_t idx = static_cast<std::size_t>(c) & kMask;
  const std::size_t word = idx >> 6;
  const std::uint64_t bit = 1ull << (idx & 63u);
  if ((bitmap_[word] & bit) != 0) {
    Slot& s = slots_[idx];
    assert(s.time == c);
    for (Pending& p : s.items) lane_push(p.prio, std::move(p.fn));
    s.items.clear();  // keeps capacity — steady state allocates nothing
    bitmap_[word] &= ~bit;
  }
  assert(active_count_ > 0);
}

EventFn CalendarQueue::pop(Cycle now, Cycle* time, Priority* prio) {
  assert(size_ > 0);
  if (!active_loaded_ || active_count_ == 0) load_next(now);
  // Rescan from lane 0 every pop: an event that just scheduled a same-cycle,
  // lower-priority event must see it run next, as the heap's order dictates.
  for (std::size_t i = 0; i < kNumLanes; ++i) {
    Lane& l = lanes_[i];
    if (l.head < l.q.size()) {
      EventFn fn = std::move(l.q[l.head++]);
      if (l.head == l.q.size()) {
        l.q.clear();
        l.head = 0;
      }
      --active_count_;
      --size_;
      *time = active_time_;
      *prio = static_cast<Priority>(i);
      return fn;
    }
  }
  assert(false && "CalendarQueue::pop: active cycle loaded but all lanes empty");
  return EventFn{};
}

std::size_t CalendarQueue::ready_count(Priority prio) const {
  const Lane& l = lanes_[static_cast<std::size_t>(prio)];
  return l.q.size() - l.head;
}

EventFn CalendarQueue::pop_ready(Priority prio) {
  Lane& l = lanes_[static_cast<std::size_t>(prio)];
  assert(l.head < l.q.size());
  EventFn fn = std::move(l.q[l.head++]);
  if (l.head == l.q.size()) {
    l.q.clear();
    l.head = 0;
  }
  --active_count_;
  --size_;
  return fn;
}

}  // namespace mco::sim
