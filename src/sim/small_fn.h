// EventFn: the simulator's event callable.
//
// std::function<void()> keeps only ~2 words of inline storage, so the
// event-loop's bread-and-butter captures — a component `this` plus a boxed
// continuation (itself a std::function) — heap-allocate on every schedule.
// EventFn widens the inline buffer to kInlineBytes (sized for `this` + a
// std::function + a few words), making ordinary events allocation-free; only
// genuinely fat captures spill to the heap, and the Simulator counts those
// spills so bench_simspeed (E21) can pin "events never allocate" as a
// measurable property rather than a hope.
//
// Move-only (events are scheduled once and executed once), not copyable,
// not const-callable — exactly the event-queue contract, nothing more.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mco::sim {

class EventFn {
 public:
  /// Inline capture budget: `this` + one std::function continuation + two
  /// words of arguments on common ABIs. Captures beyond this spill.
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = heap_ops<Fn>();
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { destroy(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// False when this event's capture spilled to a heap allocation.
  bool inline_stored() const { return ops_ == nullptr || !ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst's buffer and destroy the source in one step.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops kOps = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) noexcept {
          Fn* s = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
        false,
    };
    return &kOps;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops kOps = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* dst, void* src) noexcept {
          *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
        },
        [](void* p) noexcept { delete *static_cast<Fn**>(p); },
        true,
    };
    return &kOps;
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->relocate(buf_, other.buf_);
    other.ops_ = nullptr;
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace mco::sim
