#include "sim/component.h"

#include <algorithm>

namespace mco::sim {

Component::Component(Simulator& sim, std::string name, Component* parent)
    : sim_(sim), name_(std::move(name)), parent_(parent) {
  path_ = parent_ ? parent_->path_ + "." + name_ : name_;
  if (parent_) parent_->children_.push_back(this);
}

Component::~Component() {
  if (parent_) {
    auto& sib = parent_->children_;
    sib.erase(std::remove(sib.begin(), sib.end(), this), sib.end());
  }
}

}  // namespace mco::sim
