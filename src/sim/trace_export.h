// Trace export to the Chrome/Perfetto tracing JSON format.
//
// Loading the exported file in chrome://tracing (or ui.perfetto.dev) shows
// the offload as a timeline: one row per component, one instant event per
// trace record — the simulator's stand-in for an RTL waveform viewer.
#pragma once

#include <string>

#include "sim/trace.h"

namespace mco::sim {

/// Render the sink's records as a Chrome Trace Event JSON array. Each record
/// becomes an instant event ("ph":"i") with the component path as its track
/// (tid) and the detail string as an argument. Cycle timestamps map to
/// microseconds 1:1 so the viewer's zoom works at cycle granularity.
std::string to_chrome_trace(const TraceSink& sink);

/// Write to a file; throws std::runtime_error when the file cannot be opened.
void write_chrome_trace(const TraceSink& sink, const std::string& path);

}  // namespace mco::sim
