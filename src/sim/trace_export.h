// Trace export to the Chrome/Perfetto tracing JSON format.
//
// Loading the exported file in chrome://tracing (or ui.perfetto.dev) shows
// the offload as a timeline: one row per component. Instant records become
// instant events ("ph":"i"); duration spans become begin/end pairs
// ("ph":"B"/"E") that the viewer renders as stacked bars — nested spans
// (offload ⊃ marshal/sync_setup/dispatch/wait/epilogue) stack visually, so
// Eq. (1)'s phase budget can be read straight off the track.
#pragma once

#include <string>

#include "sim/trace.h"

namespace mco::sim {

/// Render the sink's records as a Chrome Trace Event JSON array. Each record
/// keeps the component path as its track (tid) and the detail string as an
/// argument. Cycle timestamps map to microseconds 1:1 so the viewer's zoom
/// works at cycle granularity. Begin/end pairs are emitted in stream order,
/// which the sink guarantees is stack-disciplined per track; a span still
/// open at export time produces a lone "B" (rendered as running to the end
/// of the trace).
std::string to_chrome_trace(const TraceSink& sink);

/// Write to a file; throws std::runtime_error when the file cannot be opened.
void write_chrome_trace(const TraceSink& sink, const std::string& path);

}  // namespace mco::sim
