#include "sim/trace_export.h"

#include <fstream>
#include <map>
#include <stdexcept>

#include "util/strings.h"

namespace mco::sim {

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string to_chrome_trace(const TraceSink& sink) {
  // Stable tid per component path, in order of first appearance.
  std::map<std::string, int> tids;
  std::string out = "[\n";
  bool first = true;

  const auto emit = [&](const std::string& record) {
    if (!first) out += ",\n";
    first = false;
    out += record;
  };

  for (const auto& r : sink.records()) {
    auto [it, inserted] = tids.emplace(r.who, static_cast<int>(tids.size()) + 1);
    if (inserted) {
      emit(util::format("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                        "\"args\":{\"name\":\"%s\"}}",
                        it->second, json_escape(r.who).c_str()));
    }
    switch (r.phase) {
      case TracePhase::kInstant:
        emit(util::format(
            "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%llu,\"pid\":1,\"tid\":%d,\"s\":\"t\","
            "\"args\":{\"detail\":\"%s\"}}",
            json_escape(r.what).c_str(), static_cast<unsigned long long>(r.time), it->second,
            json_escape(r.detail).c_str()));
        break;
      case TracePhase::kBegin:
        emit(util::format(
            "{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%llu,\"pid\":1,\"tid\":%d,"
            "\"args\":{\"detail\":\"%s\"}}",
            json_escape(r.what).c_str(), static_cast<unsigned long long>(r.time), it->second,
            json_escape(r.detail).c_str()));
        break;
      case TracePhase::kEnd:
        // "E" closes the innermost open "B" on (pid,tid); the name is
        // redundant but keeps the file greppable per phase.
        emit(util::format("{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%llu,\"pid\":1,\"tid\":%d}",
                          json_escape(r.what).c_str(),
                          static_cast<unsigned long long>(r.time), it->second));
        break;
    }
  }
  out += "\n]\n";
  return out;
}

void write_chrome_trace(const TraceSink& sink, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  f << to_chrome_trace(sink);
}

}  // namespace mco::sim
