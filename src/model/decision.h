// Offload-decision solving (the paper's Eq. (3) and §III closing remarks).
//
// Given a runtime model, answer:
//  * the minimum number of clusters meeting a deadline t_max (Eq. 3);
//  * whether offloading beats host execution at all, and with which M.
#pragma once

#include <cstdint>
#include <optional>

#include "model/runtime_model.h"

namespace mco::model {

/// Minimum M with t̂(M, N) ≤ t_max, or nullopt if no M in [1, m_max]
/// satisfies the deadline. For c == 0 this is the paper's closed form
///   M_min = ceil( b·N / (t_max − t0 − a·N) )
/// (validated against a linear scan); for c > 0 the quadratic
/// c·M² + (t0 + a·N − t_max)·M + b·N ≤ 0 is solved instead.
///
/// The deadline is inclusive: t_max exactly equal to t̂(M, N) admits M.
/// Callers that serve a request stream treat nullopt as "shed the job":
/// serve::OffloadService rejects such jobs with an explicit verdict rather
/// than queueing work that cannot meet its deadline on any fabric subset.
std::optional<unsigned> min_clusters_for_deadline(const RuntimeModel& model, std::uint64_t n,
                                                  double t_max, unsigned m_max);

/// An offload decision against a host-execution alternative.
struct OffloadDecision {
  bool offload = false;       ///< offloading beats the host
  unsigned m = 0;             ///< chosen cluster count (0 if staying on host)
  double t_offload = 0.0;     ///< predicted offload runtime at m (if offload)
  double t_host = 0.0;        ///< predicted host runtime
  double speedup = 0.0;       ///< t_host / t_offload (if offload)
};

/// Pick the best strategy: host execution (cost t_host) vs. offloading with
/// the runtime-minimizing M ≤ m_max.
OffloadDecision decide_offload(const RuntimeModel& model, std::uint64_t n, double t_host,
                               unsigned m_max);

/// Problem size above which offloading (with m clusters) beats a host that
/// costs host_cycles_per_elem per element: the break-even N, or nullopt if
/// offload never wins (e.g. host is faster per element than the combined
/// offload terms). Found by scanning doubling then bisecting — the model is
/// monotone in N for fixed M.
std::optional<std::uint64_t> break_even_n(const RuntimeModel& model, unsigned m,
                                          double host_cycles_per_elem,
                                          std::uint64_t n_max = 1ull << 32);

}  // namespace mco::model
