#include "model/fitter.h"

#include <array>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace mco::model {

namespace {

/// Solve the k×k system A·x = b by Gaussian elimination with partial
/// pivoting. Throws std::invalid_argument on (near-)singular systems.
template <std::size_t K>
std::array<double, K> solve(std::array<std::array<double, K>, K> a, std::array<double, K> b) {
  for (std::size_t col = 0; col < K; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < K; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12)
      throw std::invalid_argument("fit_runtime_model: singular design matrix");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < K; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < K; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::array<double, K> x{};
  for (std::size_t i = K; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < K; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return x;
}

template <std::size_t K>
FitResult fit_k(const std::vector<Sample>& samples,
                const std::function<std::array<double, K>(const Sample&)>& features) {
  // Normal equations: (XᵀX)·beta = Xᵀy.
  std::array<std::array<double, K>, K> xtx{};
  std::array<double, K> xty{};
  for (const Sample& s : samples) {
    const std::array<double, K> f = features(s);
    for (std::size_t i = 0; i < K; ++i) {
      xty[i] += f[i] * s.t;
      for (std::size_t j = 0; j < K; ++j) xtx[i][j] += f[i] * f[j];
    }
  }
  const std::array<double, K> beta = solve<K>(xtx, xty);

  FitResult out;
  out.model.t0 = beta[0];
  out.model.a = beta[1];
  out.model.b = beta[2];
  out.model.c = K == 4 ? beta[3] : 0.0;

  double mean = 0.0;
  for (const Sample& s : samples) mean += s.t;
  mean /= static_cast<double>(samples.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (const Sample& s : samples) {
    const double r = s.t - out.model.predict(s.m, s.n);
    ss_res += r * r;
    ss_tot += (s.t - mean) * (s.t - mean);
    out.max_abs_residual = std::max(out.max_abs_residual, std::abs(r));
  }
  out.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return out;
}

}  // namespace

FitResult fit_runtime_model(const std::vector<Sample>& samples, FitOptions opts) {
  const std::size_t k = opts.include_m_term ? 4 : 3;
  if (samples.size() < k)
    throw std::invalid_argument("fit_runtime_model: not enough samples for the model order");
  for (const Sample& s : samples) {
    if (s.m == 0) throw std::invalid_argument("fit_runtime_model: sample with m == 0");
  }

  if (opts.include_m_term) {
    return fit_k<4>(samples, [](const Sample& s) {
      const double nd = static_cast<double>(s.n);
      const double md = static_cast<double>(s.m);
      return std::array<double, 4>{1.0, nd, nd / md, md};
    });
  }
  return fit_k<3>(samples, [](const Sample& s) {
    const double nd = static_cast<double>(s.n);
    const double md = static_cast<double>(s.m);
    return std::array<double, 3>{1.0, nd, nd / md};
  });
}

}  // namespace mco::model
