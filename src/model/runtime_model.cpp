#include "model/runtime_model.h"

#include <limits>
#include <stdexcept>

#include "util/strings.h"

namespace mco::model {

double RuntimeModel::predict(unsigned m, std::uint64_t n) const {
  if (m == 0) throw std::invalid_argument("RuntimeModel: m == 0");
  const double nd = static_cast<double>(n);
  return t0 + a * nd + b * nd / static_cast<double>(m) + c * static_cast<double>(m);
}

double RuntimeModel::serial_fraction(unsigned m, std::uint64_t n) const {
  const double total = predict(m, n);
  if (total <= 0.0) return 0.0;
  const double serial = t0 + a * static_cast<double>(n) + c * static_cast<double>(m);
  return serial / total;
}

double RuntimeModel::self_speedup(unsigned m, std::uint64_t n) const {
  return predict(1, n) / predict(m, n);
}

unsigned RuntimeModel::best_m(std::uint64_t n, unsigned m_max) const {
  if (m_max == 0) throw std::invalid_argument("RuntimeModel: m_max == 0");
  unsigned best = 1;
  double best_t = std::numeric_limits<double>::infinity();
  for (unsigned m = 1; m <= m_max; ++m) {
    const double t = predict(m, n);
    if (t < best_t) {
      best_t = t;
      best = m;
    }
  }
  return best;
}

std::string RuntimeModel::describe() const {
  return util::format("t(M,N) = %.4g + %.6g*N + %.6g*N/M + %.6g*M", t0, a, b, c);
}

RuntimeModel paper_daxpy_model() { return RuntimeModel{367.0, 0.25, 2.6 / 8.0, 0.0}; }

}  // namespace mco::model
