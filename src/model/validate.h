// Model validation beyond in-sample MAPE: cross-validation and residuals.
//
// The paper validates Eq. (1) on the same grid it was derived from; a user
// fitting the model from measurements should also check it *generalizes* —
// e.g. that a model fitted without ever seeing N=768 still predicts N=768
// within tolerance. Leave-one-problem-size-out cross-validation does that.
#pragma once

#include <map>
#include <vector>

#include "model/fitter.h"
#include "model/runtime_model.h"

namespace mco::model {

struct CrossValidationResult {
  /// Held-out N → MAPE of the model fitted on all *other* sizes.
  std::map<std::uint64_t, double> held_out_mape;
  double worst_mape = 0.0;
  double mean_mape = 0.0;
};

/// Leave-one-N-out cross-validation. Requires samples spanning at least
/// three distinct problem sizes (fewer leaves the training fold rank-
/// deficient); throws std::invalid_argument otherwise.
CrossValidationResult cross_validate_by_n(const std::vector<Sample>& samples,
                                          FitOptions opts = {});

/// Residual summary of a model over samples.
struct ResidualStats {
  double mean = 0.0;      ///< signed mean (bias)
  double mean_abs = 0.0;  ///< mean |residual|
  double max_abs = 0.0;
  double rmse = 0.0;
};

ResidualStats residual_stats(const RuntimeModel& model, const std::vector<Sample>& samples);

}  // namespace mco::model
