// Analytical offload-runtime model (the paper's Eq. (1), generalized).
//
//   t̂(M, N) = t0 + a·N + b·N/M + c·M
//
//  * t0 — constant offload overhead (dispatch, wakeup, synchronization);
//  * a·N — serial data term (shared-bandwidth data movement);
//  * b·N/M — parallel compute term (Amdahl's parallel fraction);
//  * c·M — per-cluster dispatch term (zero in the extended design, the
//    sequential-dispatch slope in the baseline).
//
// The paper's DAXPY instance is t0 = 367, a = 1/4, b = 2.6/8, c = 0.
#pragma once

#include <cstdint>
#include <string>

namespace mco::model {

struct RuntimeModel {
  double t0 = 0.0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  /// Predicted runtime in cycles.
  double predict(unsigned m, std::uint64_t n) const;

  /// Serial fraction of the predicted runtime at (m, n) — the Amdahl bound:
  /// speedup over M clusters saturates at 1/serial_fraction(n).
  double serial_fraction(unsigned m, std::uint64_t n) const;

  /// Predicted speedup of using m clusters over one cluster.
  double self_speedup(unsigned m, std::uint64_t n) const;

  /// M minimizing predicted runtime for problem size n, searched over
  /// [1, m_max]. With c == 0 the model is monotone in M and returns m_max.
  unsigned best_m(std::uint64_t n, unsigned m_max) const;

  std::string describe() const;
};

/// The exact constants of the paper's Eq. (1) for the extended design.
RuntimeModel paper_daxpy_model();

/// One measured data point.
struct Sample {
  unsigned m = 0;
  std::uint64_t n = 0;
  double t = 0.0;
};

}  // namespace mco::model
