#include "model/decision.h"

#include <cmath>
#include <stdexcept>

namespace mco::model {

std::optional<unsigned> min_clusters_for_deadline(const RuntimeModel& model, std::uint64_t n,
                                                  double t_max, unsigned m_max) {
  if (m_max == 0) throw std::invalid_argument("min_clusters_for_deadline: m_max == 0");
  const double nd = static_cast<double>(n);

  if (model.c == 0.0) {
    // Paper Eq. (3): M_min = ceil( b·N / (t_max − t0 − a·N) ). The deadline
    // is inclusive (t̂(M, N) ≤ t_max): zero slack is still feasible when the
    // parallel term vanishes (b·N == 0), where t̂ does not depend on M.
    const double slack = t_max - model.t0 - model.a * nd;
    const double work = model.b * nd;
    if (slack <= 0.0) {
      if (slack == 0.0 && work == 0.0) return 1u;
      return std::nullopt;  // even M → ∞ misses the deadline
    }
    const double m_real = work / slack;
    unsigned m = m_real <= 1.0 ? 1u : static_cast<unsigned>(std::ceil(m_real));
    // Float guard: when t_max lies exactly on t̂(M, N) the division can land
    // a hair off an integer and ceil then over- or undershoots by one.
    // Re-anchor on the model itself so the returned M is truly minimal.
    if (m > 1 && model.predict(m - 1, n) <= t_max) {
      --m;
    } else if (model.predict(m, n) > t_max) {
      ++m;
    }
    if (m > m_max) return std::nullopt;
    return m;
  }

  // With a per-cluster term, runtime is not monotone in M: scan. m_max is
  // small (clusters on one chip), so this is exact and cheap.
  for (unsigned m = 1; m <= m_max; ++m) {
    if (model.predict(m, n) <= t_max) return m;
  }
  return std::nullopt;
}

OffloadDecision decide_offload(const RuntimeModel& model, std::uint64_t n, double t_host,
                               unsigned m_max) {
  OffloadDecision d;
  d.t_host = t_host;
  const unsigned best = model.best_m(n, m_max);
  const double t_off = model.predict(best, n);
  if (t_off < t_host) {
    d.offload = true;
    d.m = best;
    d.t_offload = t_off;
    d.speedup = t_host / t_off;
  }
  return d;
}

std::optional<std::uint64_t> break_even_n(const RuntimeModel& model, unsigned m,
                                          double host_cycles_per_elem, std::uint64_t n_max) {
  if (m == 0) throw std::invalid_argument("break_even_n: m == 0");
  if (host_cycles_per_elem <= 0.0)
    throw std::invalid_argument("break_even_n: non-positive host rate");

  const auto offload_wins = [&](std::uint64_t n) {
    return model.predict(m, n) < host_cycles_per_elem * static_cast<double>(n);
  };

  // If the host's per-element cost does not exceed the offload's per-element
  // slope, growing N can never amortize the constant overhead.
  const double offload_slope = model.a + model.b / static_cast<double>(m);
  if (host_cycles_per_elem <= offload_slope) return std::nullopt;

  std::uint64_t hi = 1;
  while (hi < n_max && !offload_wins(hi)) hi *= 2;
  if (!offload_wins(hi)) return std::nullopt;
  std::uint64_t lo = hi / 2;  // offload loses at lo (or lo == 0)
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (offload_wins(mid)) hi = mid;
    else lo = mid;
  }
  return hi;
}

}  // namespace mco::model
