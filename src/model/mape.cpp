#include "model/mape.h"

#include <cmath>
#include <stdexcept>

namespace mco::model {

double mape(const RuntimeModel& model, const std::vector<Sample>& samples) {
  if (samples.empty()) throw std::invalid_argument("mape: no samples");
  double acc = 0.0;
  for (const Sample& s : samples) {
    if (s.t <= 0.0) throw std::invalid_argument("mape: non-positive measured runtime");
    acc += std::abs(s.t - model.predict(s.m, s.n)) / s.t;
  }
  return 100.0 * acc / static_cast<double>(samples.size());
}

std::map<std::uint64_t, double> mape_by_n(const RuntimeModel& model,
                                          const std::vector<Sample>& samples) {
  std::map<std::uint64_t, std::vector<Sample>> groups;
  for (const Sample& s : samples) groups[s.n].push_back(s);
  std::map<std::uint64_t, double> out;
  for (const auto& [n, group] : groups) out[n] = mape(model, group);
  return out;
}

}  // namespace mco::model
