#include "model/validate.h"

#include <cmath>
#include <set>
#include <stdexcept>

#include "model/mape.h"

namespace mco::model {

CrossValidationResult cross_validate_by_n(const std::vector<Sample>& samples, FitOptions opts) {
  std::set<std::uint64_t> sizes;
  for (const Sample& s : samples) sizes.insert(s.n);
  if (sizes.size() < 3)
    throw std::invalid_argument("cross_validate_by_n: need at least 3 distinct problem sizes");

  CrossValidationResult out;
  double acc = 0.0;
  for (const std::uint64_t held : sizes) {
    std::vector<Sample> train;
    std::vector<Sample> test;
    for (const Sample& s : samples) {
      (s.n == held ? test : train).push_back(s);
    }
    const FitResult fit = fit_runtime_model(train, opts);
    const double err = mape(fit.model, test);
    out.held_out_mape[held] = err;
    out.worst_mape = std::max(out.worst_mape, err);
    acc += err;
  }
  out.mean_mape = acc / static_cast<double>(sizes.size());
  return out;
}

ResidualStats residual_stats(const RuntimeModel& model, const std::vector<Sample>& samples) {
  if (samples.empty()) throw std::invalid_argument("residual_stats: no samples");
  ResidualStats st;
  double sq = 0.0;
  for (const Sample& s : samples) {
    const double r = s.t - model.predict(s.m, s.n);
    st.mean += r;
    st.mean_abs += std::abs(r);
    st.max_abs = std::max(st.max_abs, std::abs(r));
    sq += r * r;
  }
  const double n = static_cast<double>(samples.size());
  st.mean /= n;
  st.mean_abs /= n;
  st.rmse = std::sqrt(sq / n);
  return st;
}

}  // namespace mco::model
