// First-order expected-runtime model under offload-path faults.
//
// The recovery layer (OffloadRuntime's watchdog/retry/redistribute engine)
// converts faults from hangs into latency. This model predicts that latency
// in expectation, composing the fault-free Eq. (1) prediction with the
// recovery protocol's cost structure:
//
//   E[t] ≈ t̂(M, N) + P(any victim) · E[recovery cost]
//
// where the recovery cost walks the same rounds the runtime executes — a
// watchdog wait, a probe sweep of missing clusters, retry rounds with
// exponential backoff while each retry independently fails with the same
// per-dispatch fault probability, and finally (if all retries are consumed)
// a redistribution of the failed chunk onto one survivor.
//
// It is a first-order expectation: fault events at different protocol points
// are treated independently and at most one victim cluster is assumed per
// offload (accurate for the small per-event probabilities the break-even
// analysis cares about; bench_fault_sweep reports model vs. measured).
#pragma once

#include <cstdint>

#include "model/runtime_model.h"

namespace mco::model {

/// The recovery-protocol constants the expectation walks (mirrors
/// OffloadRuntimeConfig's recovery knobs plus the per-dispatch fault
/// probability being modelled).
struct FaultModelParams {
  /// Probability that one dispatch towards the victim cluster is lost
  /// (dropped store or hung wakeup — anything a retry can heal).
  double dispatch_loss_prob = 0.0;
  /// Completion-wait watchdog budget per round.
  double watchdog_wait_cycles = 1'000'000.0;
  unsigned max_retries = 3;
  double backoff_base_cycles = 64.0;
  double backoff_multiplier = 2.0;
  double probe_cycles = 36.0;
  double kill_store_cycles = 3.0;
  /// Cost of re-issuing the dispatch payload (host store sequence).
  double redispatch_cycles = 12.0;
  /// Cost of marshalling + dispatching + recomputing a failed cluster's
  /// chunk on one survivor (the degraded-completion tail). Scales with the
  /// chunk, so callers derive it from the fault-free model: roughly
  /// t̂(1, N/M) for the sub-job.
  double redistribute_cycles = 0.0;
};

/// Expected extra cycles the recovery layer spends when the per-dispatch
/// loss probability is params.dispatch_loss_prob (0 ⇒ 0).
double expected_fault_overhead(const FaultModelParams& params);

/// Expected offload runtime with faults: model.predict(m, n) plus the
/// expected recovery overhead, scaled to the offload's shape — any of the m
/// dispatch replicas being lost triggers recovery (1 - (1-q)^m), a watchdog
/// expiry probes all m barrier-blocked participants, and the redistribute
/// term is derived from the model itself (a one-cluster sub-job over the
/// failed chunk of n/m items).
double expected_runtime_under_faults(const RuntimeModel& model, unsigned m, std::uint64_t n,
                                     FaultModelParams params);

/// Largest per-dispatch fault probability at which the *extended* design
/// (with recovery overhead) still beats the fault-free *baseline* design at
/// (m, n) — the fault-rate break-even of the paper's speedup claim. Found by
/// bisection on [0, 1]; returns 1.0 if extended wins even at certain loss,
/// 0.0 if it never wins.
double fault_breakeven_prob(const RuntimeModel& extended, const RuntimeModel& baseline,
                            unsigned m, std::uint64_t n, FaultModelParams params);

}  // namespace mco::model
