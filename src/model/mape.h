// Mean absolute percentage error (the paper's Eq. (2)).
#pragma once

#include <map>
#include <vector>

#include "model/runtime_model.h"

namespace mco::model {

/// MAPE in percent over a sample set: (100/|S|) · Σ |t − t̂| / t.
double mape(const RuntimeModel& model, const std::vector<Sample>& samples);

/// The paper's per-problem-size validation: group samples by N and compute
/// MAPE over the M sweep within each group. Returns N → MAPE(%).
std::map<std::uint64_t, double> mape_by_n(const RuntimeModel& model,
                                          const std::vector<Sample>& samples);

}  // namespace mco::model
