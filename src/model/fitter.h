// Least-squares fitting of the runtime model to measured samples.
//
// The paper derives its Eq. (1) coefficients by inspecting the hardware and
// the compiled binary; we additionally support *fitting* them from simulated
// measurements (ordinary least squares on the features [1, N, N/M, M]),
// which is how a user without RTL access would build the model.
#pragma once

#include <vector>

#include "model/runtime_model.h"

namespace mco::model {

struct FitOptions {
  /// Include the c·M term (baseline design). With false, c is fixed at 0
  /// (extended design), matching the paper's model shape.
  bool include_m_term = false;
};

struct FitResult {
  RuntimeModel model;
  double r_squared = 0.0;
  double max_abs_residual = 0.0;
};

/// Fit t ≈ t0 + a·N + b·N/M (+ c·M) to the samples. Requires at least as
/// many samples as free coefficients and a non-singular design matrix;
/// throws std::invalid_argument otherwise.
FitResult fit_runtime_model(const std::vector<Sample>& samples, FitOptions opts = {});

}  // namespace mco::model
