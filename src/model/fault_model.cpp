#include "model/fault_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mco::model {

double expected_fault_overhead(const FaultModelParams& p) {
  if (p.dispatch_loss_prob < 0.0 || p.dispatch_loss_prob > 1.0)
    throw std::invalid_argument("expected_fault_overhead: probability outside [0, 1]");
  const double q = p.dispatch_loss_prob;
  if (q == 0.0) return 0.0;

  // Condition on the first dispatch being lost (probability q). The runtime
  // then pays one watchdog window and probes the victim, and enters retry
  // rounds: round r costs kill + backoff_r + redispatch, and with
  // probability (1 - q) the retry lands and the job finishes inside the next
  // wait (no further rounds); with probability q the next watchdog window and
  // probe are paid and the protocol advances to round r + 1.
  double overhead = p.watchdog_wait_cycles + p.probe_cycles;
  double still_lost = 1.0;  // P(victim still unresolved | first loss)
  double backoff = p.backoff_base_cycles;
  for (unsigned r = 1; r <= p.max_retries; ++r) {
    overhead += still_lost * (p.kill_store_cycles + backoff + p.redispatch_cycles);
    still_lost *= q;
    // A failed retry costs another watchdog window + probe before round r+1
    // (or before giving up after the last round).
    overhead += still_lost * (p.watchdog_wait_cycles + p.probe_cycles);
    backoff *= p.backoff_multiplier;
  }
  // Retries exhausted: degraded completion — kill, barrier poke, and the
  // redistribution sub-job on a survivor.
  overhead += still_lost * (p.kill_store_cycles + p.redistribute_cycles);
  return q * overhead;
}

double expected_runtime_under_faults(const RuntimeModel& model, unsigned m, std::uint64_t n,
                                     FaultModelParams params) {
  if (m == 0) throw std::invalid_argument("expected_runtime_under_faults: zero clusters");
  if (params.redistribute_cycles == 0.0) {
    // The degraded tail re-runs the failed cluster's chunk (≈ n/m items) as a
    // one-cluster sub-job: a fresh dispatch plus its serial + compute terms.
    const std::uint64_t chunk = (n + m - 1) / m;
    params.redistribute_cycles = model.predict(1, chunk);
  }
  const double q = params.dispatch_loss_prob;
  double overhead = 0.0;
  if (q > 0.0) {
    // The victim never arrives at the team barrier, so every other
    // participant blocks inside the job too: a watchdog expiry probes all m
    // of them, not just the victim.
    params.probe_cycles *= m;
    // Any one of the m dispatch replicas being lost triggers recovery.
    const double q_any = 1.0 - std::pow(1.0 - q, static_cast<double>(m));
    overhead = expected_fault_overhead(params) * (q_any / q);
  }
  return model.predict(m, n) + overhead;
}

double fault_breakeven_prob(const RuntimeModel& extended, const RuntimeModel& baseline,
                            unsigned m, std::uint64_t n, FaultModelParams params) {
  const double target = baseline.predict(m, n);
  const auto runtime_at = [&](double q) {
    FaultModelParams p = params;
    p.dispatch_loss_prob = q;
    return expected_runtime_under_faults(extended, m, n, p);
  };
  if (runtime_at(0.0) >= target) return 0.0;
  if (runtime_at(1.0) <= target) return 1.0;
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (runtime_at(mid) <= target) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace mco::model
