#include "soc/config_io.h"

#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace mco::soc {

namespace {

/// One exposed field: dotted name + typed accessors into a SocConfig.
struct Field {
  std::string name;
  std::function<std::string(const SocConfig&)> get;
  std::function<void(SocConfig&, const std::string&)> set;
};

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const unsigned long long out = std::stoull(v, &pos, 0);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(
        util::format("config: key '%s' expects an unsigned integer, got '%s'", key.c_str(),
                     v.c_str()));
  }
}

double parse_f64(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(util::format("config: key '%s' expects a number, got '%s'",
                                             key.c_str(), v.c_str()));
  }
}

std::int64_t parse_i64(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(v, &pos, 0);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(util::format("config: key '%s' expects an integer, got '%s'",
                                             key.c_str(), v.c_str()));
  }
}

bool parse_bool(const std::string& key, const std::string& v) {
  const std::string s = util::to_lower(v);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::invalid_argument(
      util::format("config: key '%s' expects a boolean, got '%s'", key.c_str(), v.c_str()));
}

#define MCO_U64(key, expr)                                                              \
  Field{key,                                                                            \
        [](const SocConfig& c) {                                                        \
          return util::format("%llu", static_cast<unsigned long long>(c.expr));         \
        },                                                                              \
        [](SocConfig& c, const std::string& v) {                                        \
          c.expr = static_cast<decltype(c.expr)>(parse_u64(key, v));                    \
        }}

#define MCO_BOOL(key, expr)                                                             \
  Field{key, [](const SocConfig& c) { return std::string(c.expr ? "true" : "false"); }, \
        [](SocConfig& c, const std::string& v) { c.expr = parse_bool(key, v); }}

#define MCO_F64(key, expr)                                              \
  Field{key, [](const SocConfig& c) { return util::format("%.17g", c.expr); }, \
        [](SocConfig& c, const std::string& v) { c.expr = parse_f64(key, v); }}

#define MCO_I64(key, expr)                                                            \
  Field{key,                                                                          \
        [](const SocConfig& c) {                                                      \
          return util::format("%lld", static_cast<long long>(c.expr));                \
        },                                                                            \
        [](SocConfig& c, const std::string& v) {                                      \
          c.expr = static_cast<decltype(c.expr)>(parse_i64(key, v));                  \
        }}

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      MCO_U64("num_clusters", num_clusters),
      MCO_BOOL("features.multicast", features.multicast),
      MCO_BOOL("features.hw_sync", features.hw_sync),
      MCO_BOOL("sim.legacy_heap_queue", sim.legacy_heap_queue),
      MCO_BOOL("sim.eager_hbm_zero", sim.eager_hbm_zero),

      MCO_U64("hbm.beats_per_cycle", hbm.beats_per_cycle),
      MCO_U64("hbm.request_latency", hbm.request_latency),

      MCO_BOOL("noc.multicast_enabled", noc.multicast_enabled),
      MCO_U64("noc.host_to_cluster_latency", noc.host_to_cluster_latency),
      MCO_U64("noc.multicast_tree_latency", noc.multicast_tree_latency),
      MCO_U64("noc.cluster_to_sync_latency", noc.cluster_to_sync_latency),
      MCO_U64("noc.cluster_to_hbm_latency", noc.cluster_to_hbm_latency),

      MCO_U64("credit.trigger_latency", credit.trigger_latency),
      MCO_U64("shared_counter.amo_latency_cycles", shared_counter.amo_latency_cycles),
      MCO_U64("team_barrier.release_latency", team_barrier.release_latency),

      MCO_U64("cluster.num_workers", cluster.num_workers),
      MCO_U64("cluster.wakeup_latency", cluster.wakeup_latency),
      MCO_U64("cluster.parse_cycles_per_word", cluster.parse_cycles_per_word),
      MCO_U64("cluster.plan_cycles", cluster.plan_cycles),
      MCO_U64("cluster.worker_wake_cycles", cluster.worker_wake_cycles),
      MCO_U64("cluster.barrier_latency", cluster.barrier_latency),
      MCO_U64("cluster.completion_issue_cycles", cluster.completion_issue_cycles),
      MCO_BOOL("cluster.dma_double_buffer", cluster.dma_double_buffer),
      MCO_U64("cluster.worker.setup_cycles", cluster.worker.setup_cycles),
      MCO_U64("cluster.tcdm.size_bytes", cluster.tcdm.size_bytes),
      MCO_U64("cluster.tcdm.num_banks", cluster.tcdm.num_banks),
      MCO_U64("cluster.dma.setup_cycles", cluster.dma.setup_cycles),

      MCO_U64("host.store_cost_num", host.store_cost_num),
      MCO_U64("host.store_cost_den", host.store_cost_den),
      MCO_U64("host.multicast_issue_cycles", host.multicast_issue_cycles),
      MCO_U64("host.hbm_load_cycles", host.hbm_load_cycles),
      MCO_U64("host.poll_loop_overhead", host.poll_loop_overhead),
      MCO_U64("host.irq_take_cycles", host.irq_take_cycles),
      MCO_U64("host.irq_handler_cycles", host.irq_handler_cycles),
      MCO_BOOL("host.has_multicast_lsu", host.has_multicast_lsu),

      MCO_BOOL("runtime.use_multicast", runtime.use_multicast),
      MCO_BOOL("runtime.use_hw_sync", runtime.use_hw_sync),
      MCO_U64("runtime.marshal_base_cycles", runtime.marshal_base_cycles),
      MCO_U64("runtime.marshal_per_word_cycles", runtime.marshal_per_word_cycles),
      MCO_U64("runtime.sync_arm_store_cycles", runtime.sync_arm_store_cycles),
      MCO_U64("runtime.counter_init_cycles", runtime.counter_init_cycles),
      MCO_U64("runtime.return_cycles", runtime.return_cycles),
      MCO_U64("runtime.host_call_cycles", runtime.host_call_cycles),
      MCO_U64("runtime.host_return_cycles", runtime.host_return_cycles),
      MCO_U64("runtime.watchdog_cycles", runtime.watchdog_cycles),
      MCO_BOOL("runtime.recovery_enabled", runtime.recovery_enabled),
      MCO_U64("runtime.watchdog_wait_cycles", runtime.watchdog_wait_cycles),
      MCO_U64("runtime.max_retries", runtime.max_retries),
      MCO_U64("runtime.backoff_base_cycles", runtime.backoff_base_cycles),
      MCO_U64("runtime.backoff_multiplier", runtime.backoff_multiplier),
      MCO_U64("runtime.probe_cycles", runtime.probe_cycles),
      MCO_U64("runtime.kill_store_cycles", runtime.kill_store_cycles),

      MCO_U64("fault.seed", fault.seed),
      MCO_I64("fault.target_cluster", fault.target_cluster),
      MCO_F64("fault.dispatch_drop_prob", fault.dispatch_drop_prob),
      MCO_F64("fault.dispatch_delay_prob", fault.dispatch_delay_prob),
      MCO_U64("fault.dispatch_delay_cycles", fault.dispatch_delay_cycles),
      MCO_F64("fault.credit_drop_prob", fault.credit_drop_prob),
      MCO_F64("fault.credit_duplicate_prob", fault.credit_duplicate_prob),
      MCO_F64("fault.irq_swallow_prob", fault.irq_swallow_prob),
      MCO_F64("fault.cluster_hang_prob", fault.cluster_hang_prob),
      MCO_F64("fault.cluster_straggle_prob", fault.cluster_straggle_prob),
      MCO_U64("fault.straggle_cycles", fault.straggle_cycles),
      MCO_F64("fault.dma_stall_prob", fault.dma_stall_prob),
      MCO_U64("fault.dma_stall_cycles", fault.dma_stall_cycles),
  };
  return kFields;
}

#undef MCO_U64
#undef MCO_BOOL
#undef MCO_F64
#undef MCO_I64

const Field* find_field(const std::string& key) {
  for (const Field& f : fields()) {
    if (f.name == key) return &f;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> config_keys() {
  std::vector<std::string> out;
  out.reserve(fields().size());
  for (const Field& f : fields()) out.push_back(f.name);
  return out;
}

std::string save_text(const SocConfig& cfg) {
  std::string out = "# mcoffload SoC configuration\n";
  for (const Field& f : fields()) {
    out += f.name + " = " + f.get(cfg) + "\n";
  }
  return out;
}

SocConfig load_text(const std::string& text) { return load_text(text, SocConfig{}); }

SocConfig load_text(const std::string& text, SocConfig base) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(
          util::format("config line %d: expected 'key = value', got '%s'", lineno,
                       trimmed.c_str()));
    }
    const std::string key = util::trim(trimmed.substr(0, eq));
    const std::string value = util::trim(trimmed.substr(eq + 1));
    const Field* f = find_field(key);
    if (!f) throw std::invalid_argument(util::format("config line %d: unknown key '%s'", lineno,
                                                     key.c_str()));
    f->set(base, value);
  }
  // Keep the derived sub-configs consistent, as Soc's constructor does.
  base.address_map.num_clusters = base.num_clusters;
  if (base.hbm.num_ports < base.num_clusters + 1) base.hbm.num_ports = base.num_clusters + 1;
  return base;
}

void save_file(const SocConfig& cfg, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_file: cannot open " + path);
  f << save_text(cfg);
}

SocConfig load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_file: cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return load_text(ss.str());
}

std::string describe(const SocConfig& cfg) {
  const char* design = cfg.features.multicast && cfg.features.hw_sync ? "extended"
                       : !cfg.features.multicast && !cfg.features.hw_sync
                           ? "baseline"
                           : (cfg.features.multicast ? "multicast-only" : "hw-sync-only");
  return util::format("%s design, %u clusters x %u workers, HBM %u beats/cyc, TCDM %s",
                      design, cfg.num_clusters, cfg.cluster.num_workers,
                      cfg.hbm.beats_per_cycle,
                      util::human_bytes(cfg.cluster.tcdm.size_bytes).c_str());
}

}  // namespace mco::soc
