// The assembled MPSoC: host + interconnect + sync + clusters + HBM.
#pragma once

#include <memory>
#include <vector>

#include "soc/config.h"

namespace mco::soc {

/// Owns the simulator and every component, wired per SocConfig. One Soc is
/// one experiment instance; building a fresh Soc per data point keeps runs
/// independent and deterministic.
///
/// Thread-safety contract ("many concurrent instances"): a Soc and its
/// entire component tree confine all mutable state to the instance — the
/// only cross-instance state is the immutable KernelRegistry::shared() and
/// per-call function-local constants. Any number of Soc instances may
/// therefore be constructed, run and destroyed on concurrent threads (the
/// exp::SweepRunner thread pool relies on this); a single Soc instance is
/// NOT internally synchronized and must be driven from one thread at a
/// time. Results stay bit-identical regardless of how runs are scheduled
/// across threads.
class Soc {
 public:
  explicit Soc(SocConfig cfg);
  ~Soc();

  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  const SocConfig& config() const { return cfg_; }

  sim::Simulator& simulator() { return *sim_; }
  mem::MainMemory& main_memory() { return *main_mem_; }
  const mem::AddressMap& address_map() const { return *map_; }
  mem::HbmController& hbm() { return *hbm_; }
  noc::Interconnect& interconnect() { return *noc_; }
  sync::CreditCounterUnit& sync_unit() { return *sync_unit_; }
  sync::SharedCounter& shared_counter() { return *shared_counter_; }
  sync::TeamBarrier& team_barrier() { return *team_barrier_; }
  host::HostCore& host() { return *host_; }
  cluster::Cluster& cluster(unsigned i) { return *clusters_.at(i); }
  unsigned num_clusters() const { return static_cast<unsigned>(clusters_.size()); }
  const kernels::KernelRegistry& kernels() const { return *registry_; }
  offload::OffloadRuntime& runtime() { return *runtime_; }
  /// The fault injector, or nullptr when cfg.fault has no enabled fault.
  fault::FaultInjector* fault_injector() { return fault_.get(); }

  /// Bump-allocate `bytes` of HBM (64-byte aligned). Throws when the heap
  /// region is exhausted.
  mem::Addr alloc(std::size_t bytes);

  /// Rewind the bump allocator to an empty heap. Long-lived Socs that serve
  /// many independent jobs (serve::SocExecutor) reset between jobs instead
  /// of exhausting HBM; all previously allocated addresses are invalidated.
  void reset_heap();

  /// Allocate and initialize an f64 array in HBM.
  mem::Addr alloc_f64(std::span<const double> values);
  mem::Addr alloc_f64_zero(std::size_t n);

  std::vector<double> read_f64(mem::Addr addr, std::size_t n) const;
  void write_f64(mem::Addr addr, std::span<const double> values);

  /// Run an offload to completion (drives the simulator).
  offload::OffloadResult run_offload(const kernels::JobArgs& args, unsigned num_clusters);

  /// Run a train of offloads back to back on the same cluster set (drives
  /// the simulator). With `pipelined`, the host marshals job k+1 under job
  /// k's accelerator time — the path serve-layer job batching amortizes
  /// per-offload overhead through.
  offload::SequenceResult run_offload_sequence(std::vector<kernels::JobArgs> jobs,
                                               unsigned num_clusters, bool pipelined);

  /// Publish every component's counters into the simulator's StatsRegistry
  /// ("hbm.beats_served", "noc.multicasts", "cluster3.jobs", ...). Idempotent:
  /// counters are re-set to the components' live values, never double-counted.
  void publish_stats();

  /// publish_stats() + the registry's CSV dump — a one-call machine inventory.
  std::string dump_stats();

  /// publish_stats() + the full metrics document ("mco-metrics-v1" JSON:
  /// counters, accumulators and histograms with percentiles).
  std::string metrics_json();

 private:
  SocConfig cfg_;
  /// The immutable shared registry — not per-instance state (see class docs).
  const kernels::KernelRegistry* registry_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<mem::AddressMap> map_;
  std::unique_ptr<mem::MainMemory> main_mem_;
  std::unique_ptr<sim::Component> root_;
  std::unique_ptr<mem::HbmController> hbm_;
  std::unique_ptr<noc::Interconnect> noc_;
  std::unique_ptr<sync::CreditCounterUnit> sync_unit_;
  std::unique_ptr<sync::SharedCounter> shared_counter_;
  std::unique_ptr<sync::TeamBarrier> team_barrier_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<host::InterruptController> intc_;
  std::unique_ptr<host::HostCore> host_;
  std::vector<std::unique_ptr<cluster::Cluster>> clusters_;
  std::unique_ptr<offload::OffloadRuntime> runtime_;
  mem::Addr heap_next_ = 0;
};

}  // namespace mco::soc
