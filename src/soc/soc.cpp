#include "soc/soc.h"

#include <stdexcept>

#include "util/math.h"
#include "util/strings.h"

namespace mco::soc {

namespace {
constexpr unsigned kOffloadIrqLine = 0;

SocConfig common(unsigned num_clusters) {
  SocConfig cfg;
  cfg.num_clusters = num_clusters;
  cfg.address_map.num_clusters = num_clusters;
  cfg.hbm.num_ports = num_clusters + 1;  // one per cluster DMA + host
  return cfg;
}
}  // namespace

SocConfig SocConfig::baseline(unsigned num_clusters) {
  SocConfig cfg = common(num_clusters);
  cfg.features = SocFeatures{false, false};
  cfg.noc.multicast_enabled = false;
  cfg.host.has_multicast_lsu = false;
  cfg.runtime.use_multicast = false;
  cfg.runtime.use_hw_sync = false;
  cfg.cluster.completion = cluster::CompletionPath::kSoftwareAmo;
  return cfg;
}

SocConfig SocConfig::extended(unsigned num_clusters) {
  SocConfig cfg = common(num_clusters);
  cfg.features = SocFeatures{true, true};
  cfg.noc.multicast_enabled = true;
  cfg.host.has_multicast_lsu = true;
  cfg.runtime.use_multicast = true;
  cfg.runtime.use_hw_sync = true;
  cfg.cluster.completion = cluster::CompletionPath::kHardwareCredit;
  return cfg;
}

SocConfig SocConfig::with_features(unsigned num_clusters, SocFeatures features) {
  SocConfig cfg = common(num_clusters);
  cfg.features = features;
  cfg.noc.multicast_enabled = features.multicast;
  cfg.host.has_multicast_lsu = features.multicast;
  cfg.runtime.use_multicast = features.multicast;
  cfg.runtime.use_hw_sync = features.hw_sync;
  cfg.cluster.completion = features.hw_sync ? cluster::CompletionPath::kHardwareCredit
                                            : cluster::CompletionPath::kSoftwareAmo;
  return cfg;
}

Soc::Soc(SocConfig cfg) : cfg_(cfg), registry_(&kernels::KernelRegistry::shared()) {
  if (cfg_.num_clusters == 0) throw std::invalid_argument("Soc: zero clusters");
  // Keep the derived sub-configs consistent even if the caller only set
  // num_clusters at the top level.
  cfg_.address_map.num_clusters = cfg_.num_clusters;
  if (cfg_.hbm.num_ports < cfg_.num_clusters + 1) cfg_.hbm.num_ports = cfg_.num_clusters + 1;

  sim_ = std::make_unique<sim::Simulator>(cfg_.sim.legacy_heap_queue
                                              ? sim::EngineKind::kLegacyHeap
                                              : sim::EngineKind::kFast);
  map_ = std::make_unique<mem::AddressMap>(cfg_.address_map);
  main_mem_ =
      std::make_unique<mem::MainMemory>(cfg_.address_map.hbm_size, cfg_.sim.eager_hbm_zero);
  root_ = std::make_unique<sim::Component>(*sim_, "soc");
  hbm_ = std::make_unique<mem::HbmController>(*sim_, "hbm", cfg_.hbm, root_.get());
  noc_ = std::make_unique<noc::Interconnect>(*sim_, "noc", cfg_.noc, cfg_.num_clusters,
                                             root_.get());
  sync_unit_ =
      std::make_unique<sync::CreditCounterUnit>(*sim_, "sync_unit", cfg_.credit, root_.get());
  shared_counter_ = std::make_unique<sync::SharedCounter>(*sim_, "shared_counter",
                                                          cfg_.shared_counter, root_.get());
  team_barrier_ =
      std::make_unique<sync::TeamBarrier>(*sim_, "team_barrier", cfg_.team_barrier, root_.get());
  if (cfg_.fault.any_enabled() || cfg_.fault.corruption_enabled()) {
    fault_ = std::make_unique<fault::FaultInjector>(*sim_, "fault", cfg_.fault, root_.get());
  }
  if (cfg_.fault.any_enabled()) {
    // A "lost" dispatch must be distinguishable from a merely delayed one:
    // the recovery watchdog classifies an idle cluster as stuck, so any
    // injected delivery delay has to land well inside the wait budget.
    if (cfg_.fault.dispatch_delay_prob > 0.0 &&
        cfg_.runtime.watchdog_wait_cycles <
            cfg_.fault.dispatch_delay_cycles + 100)
      throw std::invalid_argument(
          "Soc: runtime.watchdog_wait_cycles must exceed fault.dispatch_delay_cycles + 100");
    // Only crash/omission faults arm the recovery engine: corruption never
    // delays a completion, so corruption-only configs keep the seed's exact
    // wait-path timing.
    cfg_.runtime.recovery_enabled = true;
    noc_->set_fault_injector(fault_.get());
    sync_unit_->set_fault_injector(fault_.get());
    shared_counter_->set_fault_injector(fault_.get());
  }
  intc_ = std::make_unique<host::InterruptController>(*sim_, "intc", 1, root_.get());
  if (fault_) intc_->set_fault_injector(fault_.get());
  host_ = std::make_unique<host::HostCore>(*sim_, "host", cfg_.host, *intc_, kOffloadIrqLine,
                                           root_.get());

  clusters_.reserve(cfg_.num_clusters);
  for (unsigned i = 0; i < cfg_.num_clusters; ++i) {
    clusters_.push_back(std::make_unique<cluster::Cluster>(
        *sim_, util::format("cluster%u", i), cfg_.cluster, i, *registry_, *hbm_,
        /*hbm_port=*/i, *main_mem_, *map_, *noc_, *team_barrier_, root_.get()));
    noc_->set_cluster_sink(i, [c = clusters_.back().get()](const noc::DispatchMessage& m) {
      c->mailbox().deliver(m);
    });
    if (fault_) clusters_.back()->set_fault_injector(fault_.get());
  }
  noc_->set_credit_sink([this](unsigned c) { sync_unit_->increment(c); });
  noc_->set_amo_sink([this](unsigned c) { shared_counter_->amo_add(1, c); });
  sync_unit_->set_irq_callback([this] { intc_->raise(kOffloadIrqLine); });

  runtime_ = std::make_unique<offload::OffloadRuntime>(*sim_, cfg_.runtime, *host_, *noc_,
                                                       *sync_unit_, *shared_counter_, *registry_,
                                                       *main_mem_, *map_);
  if (fault_) runtime_->set_fault_injector(fault_.get());
  runtime_->set_cluster_probe([this](unsigned i) {
    const cluster::Cluster& c = *clusters_.at(i);
    return offload::OffloadRuntime::ClusterProbe{c.busy(), c.has_pending_dispatch(),
                                                 c.last_completed_job_id()};
  });
  runtime_->set_cluster_kill([this](unsigned i) { clusters_.at(i)->abort_pending(); });
  runtime_->set_barrier_poke([this](unsigned expected) {
    team_barrier_->arrive(expected, [] {});
  });
  heap_next_ = map_->hbm_base();
}

Soc::~Soc() = default;

void Soc::reset_heap() { heap_next_ = map_->hbm_base(); }

mem::Addr Soc::alloc(std::size_t bytes) {
  heap_next_ = util::round_up<mem::Addr>(heap_next_, 64);
  const mem::Addr addr = heap_next_;
  if (addr + bytes > map_->hbm_end())
    throw std::runtime_error(util::format("Soc: HBM heap exhausted (requested %zu B)", bytes));
  heap_next_ += bytes;
  return addr;
}

mem::Addr Soc::alloc_f64(std::span<const double> values) {
  const mem::Addr addr = alloc(values.size() * 8);
  main_mem_->write_f64_array(map_->hbm_offset(addr), values);
  return addr;
}

mem::Addr Soc::alloc_f64_zero(std::size_t n) {
  const mem::Addr addr = alloc(n * 8);
  main_mem_->fill(map_->hbm_offset(addr), n * 8, 0);
  return addr;
}

std::vector<double> Soc::read_f64(mem::Addr addr, std::size_t n) const {
  return main_mem_->read_f64_array(map_->hbm_offset(addr), n);
}

void Soc::write_f64(mem::Addr addr, std::span<const double> values) {
  main_mem_->write_f64_array(map_->hbm_offset(addr), values);
}

offload::OffloadResult Soc::run_offload(const kernels::JobArgs& args, unsigned num_clusters) {
  return runtime_->offload_blocking(args, num_clusters);
}

offload::SequenceResult Soc::run_offload_sequence(std::vector<kernels::JobArgs> jobs,
                                                  unsigned num_clusters, bool pipelined) {
  return runtime_->offload_sequence_blocking(std::move(jobs), num_clusters, pipelined);
}

void Soc::publish_stats() {
  sim::StatsRegistry& reg = sim_->stats();
  const auto set = [&reg](const std::string& name, std::uint64_t v) {
    auto& c = reg.counter(name);
    c.reset();
    c.inc(v);
  };
  set("hbm.beats_served", hbm_->beats_served());
  set("hbm.transfers_completed", hbm_->transfers_completed());
  set("hbm.busy_cycles", hbm_->busy_cycles());
  set("noc.unicasts", noc_->unicasts_sent());
  set("noc.multicasts", noc_->multicasts_sent());
  set("noc.credits", noc_->credits_routed());
  set("noc.amos", noc_->amos_routed());
  set("sync_unit.interrupts", sync_unit_->interrupts_fired());
  set("sync_unit.spurious_increments", sync_unit_->spurious_increments());
  set("shared_counter.amos", shared_counter_->amos_serviced());
  set("team_barrier.episodes", team_barrier_->episodes_completed());
  set("host.busy_cycles", host_->busy_cycles());
  set("host.polls", host_->polls());
  set("host.irqs_taken", host_->irqs_taken());
  set("runtime.offloads", runtime_->offloads_completed());
  if (fault_) {
    const fault::FaultCounters& fc = fault_->counters();
    set("fault.dispatches_dropped", fc.dispatches_dropped);
    set("fault.dispatches_delayed", fc.dispatches_delayed);
    set("fault.credits_dropped", fc.credits_dropped);
    set("fault.credits_duplicated", fc.credits_duplicated);
    set("fault.irqs_swallowed", fc.irqs_swallowed);
    set("fault.cluster_hangs", fc.cluster_hangs);
    set("fault.cluster_straggles", fc.cluster_straggles);
    set("fault.dma_stalls", fc.dma_stalls);
    set("fault.payload_flips", fc.payload_flips);
    set("fault.chunk_truncations", fc.chunk_truncations);
    set("fault.meta_corruptions", fc.meta_corruptions);
    set("fault.stale_reads", fc.stale_reads);
  }
  for (unsigned i = 0; i < num_clusters(); ++i) {
    const auto& c = *clusters_[i];
    const std::string prefix = util::format("cluster%u.", i);
    set(prefix + "jobs", c.jobs_executed());
    set(prefix + "items", c.items_processed());
    set(prefix + "dma_bytes", clusters_[i]->dma().bytes_moved());
    std::uint64_t worker_busy = 0;
    for (unsigned w = 0; w < c.config().num_workers; ++w) worker_busy += c.worker(w).busy_cycles();
    set(prefix + "worker_busy_cycles", worker_busy);
  }
}

std::string Soc::dump_stats() {
  publish_stats();
  return sim_->stats().dump_csv();
}

std::string Soc::metrics_json() {
  publish_stats();
  return sim_->stats().metrics_to_json();
}

}  // namespace mco::soc
