// Shared observability plumbing for benches and examples.
//
// Every binary that runs a simulation accepts the same two flags:
//
//   --trace-out=<file>    dump a Chrome/Perfetto trace of an instrumented run
//   --metrics-out=<file>  dump the full metrics inventory (.json or .csv)
//
// arm_observability() attaches the trace sink before the run;
// export_observability() publishes every component's counters and writes the
// requested files afterwards. With neither flag given both calls are no-ops
// and the simulation's cycle counts are bit-identical to an uninstrumented
// build — the acceptance bar the trace/metrics layer is held to.
//
// metric_reference() is the single source of truth for the names this
// codebase emits; docs/observability.md documents exactly this inventory and
// scripts/check_metrics_docs.py (plus the test_trace_spans cross-check) keep
// the two in sync in both directions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soc/config.h"

namespace mco::util {
class Cli;
}

namespace mco::soc {

class Soc;

struct ObservabilityOptions {
  std::string trace_out;    ///< Chrome trace JSON path; empty = no trace
  std::string metrics_out;  ///< metrics dump path (.json or .csv); empty = none
  bool tracing() const { return !trace_out.empty(); }
  bool any() const { return !trace_out.empty() || !metrics_out.empty(); }
};

/// Validate that `path` can plausibly be written: its parent directory must
/// exist. Throws std::invalid_argument naming `flag` otherwise. Called by
/// both CLI readers below so a typo'd output directory fails up front with
/// one uniform message instead of after minutes of simulation.
void validate_output_path(const std::string& path, const char* flag);

/// Read --trace-out / --metrics-out from a parsed command line. Unknown
/// output directories print a clear message to stderr and exit(2).
ObservabilityOptions observability_from_cli(const util::Cli& cli);

/// Extract and REMOVE --trace-out / --metrics-out from argc/argv (both
/// `--flag=value` and `--flag value` forms) — benches must strip them before
/// benchmark::Initialize rejects unknown flags. Unknown output directories
/// print a clear message to stderr and exit(2).
ObservabilityOptions observability_from_args(int& argc, char** argv);

/// Enable the Soc's trace sink when a trace was requested. Call before the
/// run whose timeline should be captured.
void arm_observability(Soc& soc, const ObservabilityOptions& opts);

/// Publish component counters into the registry and write the requested
/// files: metrics as JSON (or CSV when the path ends in ".csv"), the trace in
/// Chrome Trace Event format. No-op when no flag was given.
void export_observability(Soc& soc, const ObservabilityOptions& opts);

/// The shared tail behind every binary's --trace-out/--metrics-out support:
/// when either flag was given, run one verified offload of `kernel` on a
/// fresh Soc with the trace sink armed, write the artifacts and print where
/// they went. A no-op without flags, so the caller's own runs (and their
/// printed cycle counts) are never perturbed.
void export_canonical_offload(const ObservabilityOptions& opts, SocConfig cfg,
                              const std::string& kernel, std::uint64_t n, unsigned m,
                              std::uint64_t seed = 42);

/// One entry of the emitted-name inventory.
struct MetricInfo {
  const char* name;  ///< registry or span name; "<i>" stands for a cluster index
  const char* kind;  ///< "counter" | "histogram" | "span"
};

/// Every counter, histogram and span name the simulator can emit.
const std::vector<MetricInfo>& metric_reference();

}  // namespace mco::soc
