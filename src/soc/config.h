// Full SoC configuration: every latency/bandwidth parameter in one place.
//
// The defaults are calibrated so the *extended* design reproduces the
// paper's Eq. (1), t̂(M,N) = 367 + N/4 + 2.6·N/(8·M), for DAXPY, and the
// *baseline* design reproduces the paper's Fig. 1 (left) curve (dispatch
// overhead ≈ 9–10 cycles per cluster, software polling completion).
// See DESIGN.md §5 for the calibration targets and EXPERIMENTS.md for the
// measured outcomes.
#pragma once

#include "cluster/cluster.h"
#include "fault/fault_injector.h"
#include "host/host_core.h"
#include "mem/address_map.h"
#include "mem/hbm_controller.h"
#include "noc/interconnect.h"
#include "offload/offload_runtime.h"
#include "sync/credit_counter.h"
#include "sync/shared_counter.h"
#include "sync/team_barrier.h"

namespace mco::soc {

/// The two hardware/runtime extensions the paper proposes.
struct SocFeatures {
  bool multicast = false;  ///< host→cluster multicast dispatch path
  bool hw_sync = false;    ///< dedicated credit-counter sync unit + IRQ
};

/// Simulation-kernel knobs (they change host wall-time, never a simulated
/// cycle — both engines and both zeroing modes are pinned bit-identical).
struct SimCoreConfig {
  /// Run on the pre-optimization comparator-heap engine (EngineKind::
  /// kLegacyHeap) instead of the calendar-queue fast path. Reference and
  /// benchmark baseline only.
  bool legacy_heap_queue = false;
  /// Touch every HBM page at construction (the original eager-zero
  /// behaviour) instead of lazy calloc zero pages.
  bool eager_hbm_zero = false;
};

struct SocConfig {
  unsigned num_clusters = 32;
  SocFeatures features{};
  SimCoreConfig sim{};

  mem::AddressMapConfig address_map{};
  mem::HbmConfig hbm{};
  noc::NocConfig noc{};
  sync::CreditCounterConfig credit{};
  sync::SharedCounterConfig shared_counter{};
  sync::TeamBarrierConfig team_barrier{};
  cluster::ClusterConfig cluster{};
  host::HostConfig host{};
  offload::OffloadRuntimeConfig runtime{};
  /// Deterministic fault injection (all probabilities 0 by default — no
  /// injector is constructed and every timing path is untouched). Setting any
  /// crash/omission probability > 0 auto-enables the runtime's recovery
  /// layer; the silent-data-corruption probabilities do not (they never
  /// delay a completion, only poison its bytes — pair them with
  /// runtime.integrity to detect them).
  fault::FaultConfig fault{};

  /// Paper's baseline design: sequential unicast dispatch + software polling.
  static SocConfig baseline(unsigned num_clusters = 32);

  /// Paper's extended design: multicast dispatch + hardware credit counter.
  static SocConfig extended(unsigned num_clusters = 32);

  /// Arbitrary feature combination (for the ablation experiment).
  static SocConfig with_features(unsigned num_clusters, SocFeatures features);
};

}  // namespace mco::soc
