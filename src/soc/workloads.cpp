#include "soc/workloads.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "kernels/blas1.h"
#include "kernels/gemm.h"
#include "kernels/gemv.h"
#include "kernels/reductions.h"
#include "util/strings.h"

namespace mco::soc {

namespace {

std::vector<double> random_vec(sim::Rng& rng, std::size_t n, double lo = -1.0, double hi = 1.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Max |mem[i] − expected[i]| for an f64 array at `addr`.
double f64_error(Soc& soc, mem::Addr addr, const std::vector<double>& expected) {
  const std::vector<double> got = soc.read_f64(addr, expected.size());
  double err = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    err = std::max(err, std::abs(got[i] - expected[i]));
  }
  return err;
}

mem::Addr alloc_f32(Soc& soc, const std::vector<float>& values) {
  const mem::Addr addr = soc.alloc(values.size() * 4);
  soc.main_memory().write(
      soc.address_map().hbm_offset(addr),
      {reinterpret_cast<const std::uint8_t*>(values.data()), values.size() * 4});
  return addr;
}

double f32_error(Soc& soc, mem::Addr addr, const std::vector<float>& expected) {
  std::vector<float> got(expected.size());
  soc.main_memory().read(soc.address_map().hbm_offset(addr),
                         {reinterpret_cast<std::uint8_t*>(got.data()), got.size() * 4});
  double err = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    err = std::max(err, static_cast<double>(std::abs(got[i] - expected[i])));
  }
  return err;
}

}  // namespace

PreparedJob prepare_workload(Soc& soc, const kernels::Kernel& kernel, std::uint64_t n,
                             unsigned max_clusters, sim::Rng& rng) {
  using namespace mco::kernels;
  PreparedJob job;
  job.args.kernel_id = kernel.id();
  job.args.n = n;
  const std::size_t sn = static_cast<std::size_t>(n);

  switch (kernel.id()) {
    case kDaxpyId: {
      const auto x = random_vec(rng, sn);
      const auto y = random_vec(rng, sn);
      job.args.alpha = rng.uniform(0.5, 2.0);
      job.args.in0 = soc.alloc_f64(x);
      job.args.out0 = soc.alloc_f64(y);
      std::vector<double> expected(sn);
      for (std::size_t i = 0; i < sn; ++i) expected[i] = job.args.alpha * x[i] + y[i];
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kSaxpyId: {
      std::vector<float> x(sn), y(sn);
      for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      job.args.alpha = 1.5;
      job.args.in0 = alloc_f32(soc, x);
      job.args.out0 = alloc_f32(soc, y);
      std::vector<float> expected(sn);
      for (std::size_t i = 0; i < sn; ++i) expected[i] = 1.5f * x[i] + y[i];
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f32_error(s, out, expected); };
      break;
    }
    case kAxpbyId: {
      const auto x = random_vec(rng, sn);
      const auto y = random_vec(rng, sn);
      job.args.alpha = rng.uniform(0.5, 2.0);
      job.args.beta = rng.uniform(-1.0, 1.0);
      job.args.in0 = soc.alloc_f64(x);
      job.args.out0 = soc.alloc_f64(y);
      std::vector<double> expected(sn);
      for (std::size_t i = 0; i < sn; ++i)
        expected[i] = job.args.alpha * x[i] + job.args.beta * y[i];
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kScaleId: {
      const auto x = random_vec(rng, sn);
      job.args.alpha = rng.uniform(0.5, 2.0);
      job.args.in0 = soc.alloc_f64(x);
      job.args.out0 = soc.alloc_f64_zero(sn);
      std::vector<double> expected(sn);
      for (std::size_t i = 0; i < sn; ++i) expected[i] = job.args.alpha * x[i];
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kVecAddId: {
      const auto x = random_vec(rng, sn);
      const auto y = random_vec(rng, sn);
      job.args.in0 = soc.alloc_f64(x);
      job.args.in1 = soc.alloc_f64(y);
      job.args.out0 = soc.alloc_f64_zero(sn);
      std::vector<double> expected(sn);
      for (std::size_t i = 0; i < sn; ++i) expected[i] = x[i] + y[i];
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kVecMulId: {
      const auto x = random_vec(rng, sn);
      const auto y = random_vec(rng, sn);
      job.args.in0 = soc.alloc_f64(x);
      job.args.in1 = soc.alloc_f64(y);
      job.args.out0 = soc.alloc_f64_zero(sn);
      std::vector<double> expected(sn);
      for (std::size_t i = 0; i < sn; ++i) expected[i] = x[i] * y[i];
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kReluId: {
      const auto x = random_vec(rng, sn);
      job.args.in0 = soc.alloc_f64(x);
      job.args.out0 = soc.alloc_f64_zero(sn);
      std::vector<double> expected(sn);
      for (std::size_t i = 0; i < sn; ++i) expected[i] = std::max(x[i], 0.0);
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kFillId: {
      job.args.alpha = 7.25;
      job.args.out0 = soc.alloc_f64_zero(sn);
      const std::vector<double> expected(sn, 7.25);
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kMemcpyId: {
      const auto x = random_vec(rng, sn);
      job.args.in0 = soc.alloc_f64(x);
      job.args.out0 = soc.alloc_f64_zero(sn);
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, x](Soc& s) { return f64_error(s, out, x); };
      break;
    }
    case kDotId: {
      const auto x = random_vec(rng, sn);
      const auto y = random_vec(rng, sn);
      job.args.in0 = soc.alloc_f64(x);
      job.args.in1 = soc.alloc_f64(y);
      job.args.out0 = soc.alloc_f64_zero(max_clusters);  // partials
      job.args.out1 = soc.alloc_f64_zero(1);             // result
      double expected = 0.0;
      for (std::size_t i = 0; i < sn; ++i) expected += x[i] * y[i];
      const mem::Addr out = job.args.out1;
      job.max_abs_error = [out, expected](Soc& s) {
        return std::abs(s.read_f64(out, 1)[0] - expected);
      };
      break;
    }
    case kVecSumId: {
      const auto x = random_vec(rng, sn);
      job.args.in0 = soc.alloc_f64(x);
      job.args.out0 = soc.alloc_f64_zero(max_clusters);
      job.args.out1 = soc.alloc_f64_zero(1);
      double expected = 0.0;
      for (const double v : x) expected += v;
      const mem::Addr out = job.args.out1;
      job.max_abs_error = [out, expected](Soc& s) {
        return std::abs(s.read_f64(out, 1)[0] - expected);
      };
      break;
    }
    case kGemvId: {
      // n rows; pick a fixed, TCDM-friendly column count.
      const std::size_t cols = 32;
      job.args.aux = cols;
      job.args.alpha = rng.uniform(0.5, 2.0);
      const auto a = random_vec(rng, sn * cols);
      const auto x = random_vec(rng, cols);
      job.args.in0 = soc.alloc_f64(a);
      job.args.in1 = soc.alloc_f64(x);
      job.args.out0 = soc.alloc_f64_zero(sn);
      std::vector<double> expected(sn, 0.0);
      for (std::size_t r = 0; r < sn; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols; ++c) acc += a[r * cols + c] * x[c];
        expected[r] = job.args.alpha * acc;
      }
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    case kGemmId: {
      // n rows of A/C; B is a fixed TCDM-friendly square panel.
      const std::size_t k = 16;
      job.args.aux = k;
      job.args.alpha = rng.uniform(0.5, 2.0);
      const auto a = random_vec(rng, sn * k);
      const auto b = random_vec(rng, k * k);
      job.args.in0 = soc.alloc_f64(a);
      job.args.in1 = soc.alloc_f64(b);
      job.args.out0 = soc.alloc_f64_zero(sn * k);
      std::vector<double> expected(sn * k, 0.0);
      for (std::size_t r = 0; r < sn; ++r) {
        for (std::size_t j = 0; j < k; ++j) {
          double acc = 0.0;
          for (std::size_t i = 0; i < k; ++i) acc += a[r * k + i] * b[i * k + j];
          expected[r * k + j] = job.args.alpha * acc;
        }
      }
      const mem::Addr out = job.args.out0;
      job.max_abs_error = [out, expected](Soc& s) { return f64_error(s, out, expected); };
      break;
    }
    default:
      throw std::invalid_argument("prepare_workload: no recipe for kernel " + kernel.name());
  }
  return job;
}

offload::OffloadResult run_verified(Soc& soc, const std::string& kernel_name, std::uint64_t n,
                                    unsigned num_clusters, std::uint64_t seed,
                                    double tolerance) {
  const kernels::Kernel& kernel = soc.kernels().by_name(kernel_name);
  sim::Rng rng(seed);
  PreparedJob job = prepare_workload(soc, kernel, n, soc.num_clusters(), rng);
  const offload::OffloadResult result = soc.run_offload(job.args, num_clusters);
  const double err = job.max_abs_error(soc);
  if (err > tolerance) {
    throw std::runtime_error(util::format(
        "run_verified: %s n=%llu M=%u: result error %.3e exceeds tolerance %.3e",
        kernel_name.c_str(), static_cast<unsigned long long>(n), num_clusters, err, tolerance));
  }
  return result;
}

offload::OffloadResult run_daxpy(const SocConfig& cfg, std::uint64_t n, unsigned num_clusters,
                                 std::uint64_t seed) {
  Soc soc(cfg);
  return run_verified(soc, "daxpy", n, num_clusters, seed);
}

}  // namespace mco::soc
