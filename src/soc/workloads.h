// Workload preparation: allocate inputs, build JobArgs, verify outputs.
//
// Tests, examples and benches all need "a runnable job for kernel K of size
// n with a correctness check"; this module centralizes that so every
// experiment verifies functional correctness, not just timing.
#pragma once

#include <functional>
#include <string>

#include "kernels/kernel.h"
#include "sim/rng.h"
#include "soc/soc.h"

namespace mco::soc {

/// A ready-to-offload job plus its correctness oracle.
struct PreparedJob {
  kernels::JobArgs args;
  /// Max |measured − expected| over all outputs after the offload ran.
  std::function<double(Soc&)> max_abs_error;
};

/// Build a randomized workload for `kernel` with `n` items usable with up to
/// `max_clusters` clusters. For GEMV, `n` is the row count and the column
/// count is chosen to fit the per-cluster TCDM footprint. Throws
/// std::invalid_argument for kernels this helper does not know.
PreparedJob prepare_workload(Soc& soc, const kernels::Kernel& kernel, std::uint64_t n,
                             unsigned max_clusters, sim::Rng& rng);

/// Convenience: prepare + offload + verify in one call. Throws
/// std::runtime_error if the result error exceeds `tolerance`.
offload::OffloadResult run_verified(Soc& soc, const std::string& kernel_name, std::uint64_t n,
                                    unsigned num_clusters, std::uint64_t seed = 42,
                                    double tolerance = 1e-9);

/// The paper's benchmark: a DAXPY offload on a fresh SoC built from `cfg`.
/// Returns the offload result (functionally verified).
offload::OffloadResult run_daxpy(const SocConfig& cfg, std::uint64_t n, unsigned num_clusters,
                                 std::uint64_t seed = 42);

}  // namespace mco::soc
