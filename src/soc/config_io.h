// SocConfig (de)serialization: a small "key = value" config-file dialect.
//
// Lets experiments live in version-controlled text files instead of code:
//
//   # 32-cluster extended design, slower HBM
//   num_clusters = 32
//   features.multicast = true
//   features.hw_sync = true
//   hbm.beats_per_cycle = 8
//
// Every tunable latency/bandwidth parameter of the simulator is exposed
// under a dotted name; unknown keys and malformed values are hard errors
// (a silently ignored typo would quietly change an experiment). Writing is
// symmetric: save_text() emits every key with its current value, and
// load_text(save_text(cfg)) reproduces cfg exactly.
#pragma once

#include <string>
#include <vector>

#include "soc/config.h"

namespace mco::soc {

/// All recognized config keys (dotted names), in emission order.
std::vector<std::string> config_keys();

/// Render `cfg` as a config file (every key, deterministic order).
std::string save_text(const SocConfig& cfg);

/// Parse a config file. Starts from the defaults of SocConfig{} unless a
/// `base` is given. Supports comments (#), blank lines, booleans
/// (true/false/1/0) and unsigned integers. Throws std::invalid_argument
/// with line information on any problem.
SocConfig load_text(const std::string& text);
SocConfig load_text(const std::string& text, SocConfig base);

/// File variants; throw std::runtime_error if the file cannot be accessed.
void save_file(const SocConfig& cfg, const std::string& path);
SocConfig load_file(const std::string& path);

/// One-line human summary ("extended, 32 clusters, 12 B/cyc HBM, ...").
std::string describe(const SocConfig& cfg);

}  // namespace mco::soc
