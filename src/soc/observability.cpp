#include "soc/observability.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <cstdio>

#include "sim/trace_export.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/cli.h"
#include "util/strings.h"

namespace mco::soc {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("observability: cannot open '" + path + "' for writing");
  f << content;
}

/// validate_output_path for both flags of one options set, with the uniform
/// message + exit(2) contract of the CLI readers.
void validate_or_die(const ObservabilityOptions& opts) {
  try {
    validate_output_path(opts.trace_out, "--trace-out");
    validate_output_path(opts.metrics_out, "--metrics-out");
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

}  // namespace

void validate_output_path(const std::string& path, const char* flag) {
  if (path.empty()) return;
  const std::filesystem::path p(path);
  const std::filesystem::path dir = p.parent_path();
  if (dir.empty()) return;  // bare filename: written to the working directory
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    throw std::invalid_argument(util::format(
        "%s '%s': directory '%s' does not exist", flag, path.c_str(), dir.string().c_str()));
  }
}

ObservabilityOptions observability_from_cli(const util::Cli& cli) {
  ObservabilityOptions opts;
  opts.trace_out = cli.get("trace-out", "");
  opts.metrics_out = cli.get("metrics-out", "");
  validate_or_die(opts);
  return opts;
}

ObservabilityOptions observability_from_args(int& argc, char** argv) {
  ObservabilityOptions opts;
  const auto match = [&](int& i, const char* flag, std::string& out) {
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) != 0) return false;
    if (argv[i][len] == '=') {
      out = argv[i] + len + 1;
      return true;
    }
    if (argv[i][len] == '\0' && i + 1 < argc) {
      out = argv[++i];  // consume the value argument too
      return true;
    }
    return false;
  };
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (match(i, "--trace-out", opts.trace_out)) continue;
    if (match(i, "--metrics-out", opts.metrics_out)) continue;
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
  validate_or_die(opts);
  return opts;
}

void arm_observability(Soc& soc, const ObservabilityOptions& opts) {
  if (opts.tracing()) soc.simulator().trace().enable();
}

void export_observability(Soc& soc, const ObservabilityOptions& opts) {
  if (!opts.any()) return;
  if (!opts.metrics_out.empty()) {
    soc.publish_stats();
    const std::string body = ends_with(opts.metrics_out, ".csv")
                                 ? soc.simulator().stats().metrics_to_csv()
                                 : soc.simulator().stats().metrics_to_json();
    write_file(opts.metrics_out, body);
  }
  if (opts.tracing()) sim::write_chrome_trace(soc.simulator().trace(), opts.trace_out);
}

void export_canonical_offload(const ObservabilityOptions& opts, SocConfig cfg,
                              const std::string& kernel, std::uint64_t n, unsigned m,
                              std::uint64_t seed) {
  if (!opts.any()) return;
  Soc soc(std::move(cfg));
  arm_observability(soc, opts);
  run_verified(soc, kernel, n, m, seed);
  export_observability(soc, opts);
  if (!opts.trace_out.empty())
    std::printf("\n[observability] chrome trace written to %s\n", opts.trace_out.c_str());
  if (!opts.metrics_out.empty())
    std::printf("[observability] metrics written to %s\n", opts.metrics_out.c_str());
}

const std::vector<MetricInfo>& metric_reference() {
  // Single source of truth for every name the simulator can emit. The docs
  // cross-check (scripts/check_metrics_docs.py and test_trace_spans) compares
  // this table against docs/observability.md AND against the names actually
  // registered by an instrumented run — extend all three together.
  static const std::vector<MetricInfo> kReference = {
      // ---- counters: memory system -----------------------------------------
      {"hbm.beats_served", "counter"},
      {"hbm.transfers_completed", "counter"},
      {"hbm.busy_cycles", "counter"},
      // ---- counters: interconnect ------------------------------------------
      {"noc.unicasts", "counter"},
      {"noc.multicasts", "counter"},
      {"noc.credits", "counter"},
      {"noc.amos", "counter"},
      // ---- counters: synchronization ---------------------------------------
      {"sync_unit.interrupts", "counter"},
      {"sync_unit.spurious_increments", "counter"},
      {"shared_counter.amos", "counter"},
      {"team_barrier.episodes", "counter"},
      // ---- counters: host --------------------------------------------------
      {"host.busy_cycles", "counter"},
      {"host.polls", "counter"},
      {"host.irqs_taken", "counter"},
      // ---- counters: offload runtime ---------------------------------------
      {"runtime.offloads", "counter"},
      {"runtime.phase.marshal_cycles", "counter"},
      {"runtime.phase.sync_setup_cycles", "counter"},
      {"runtime.phase.dispatch_cycles", "counter"},
      {"runtime.phase.wait_cycles", "counter"},
      {"runtime.phase.verify_cycles", "counter"},
      {"runtime.phase.epilogue_cycles", "counter"},
      {"runtime.recovery.watchdog_timeouts", "counter"},
      {"runtime.recovery.retries", "counter"},
      {"runtime.recovery.probes", "counter"},
      {"runtime.recovery.credits_recovered", "counter"},
      {"runtime.recovery.clusters_redistributed", "counter"},
      {"runtime.recovery.recovery_cycles", "counter"},
      {"runtime.recovery.degraded_completions", "counter"},
      // ---- counters: fault injection ---------------------------------------
      {"fault.dispatches_dropped", "counter"},
      {"fault.dispatches_delayed", "counter"},
      {"fault.credits_dropped", "counter"},
      {"fault.credits_duplicated", "counter"},
      {"fault.irqs_swallowed", "counter"},
      {"fault.cluster_hangs", "counter"},
      {"fault.cluster_straggles", "counter"},
      {"fault.dma_stalls", "counter"},
      {"fault.payload_flips", "counter"},
      {"fault.chunk_truncations", "counter"},
      {"fault.meta_corruptions", "counter"},
      {"fault.stale_reads", "counter"},
      // ---- counters: per cluster -------------------------------------------
      {"cluster<i>.jobs", "counter"},
      {"cluster<i>.items", "counter"},
      {"cluster<i>.dma_bytes", "counter"},
      {"cluster<i>.worker_busy_cycles", "counter"},
      // ---- counters: serving layer (serve::register_serve_metrics) ---------
      {"serve.jobs_submitted", "counter"},
      {"serve.jobs_dispatched", "counter"},
      {"serve.jobs_queued", "counter"},
      {"serve.jobs_shed", "counter"},
      {"serve.jobs_failed", "counter"},
      {"serve.jobs_degraded", "counter"},
      {"serve.slo_met", "counter"},
      {"serve.slo_missed", "counter"},
      {"serve.probes", "counter"},
      {"serve.quarantines", "counter"},
      {"serve.readmissions", "counter"},
      {"serve.drain.entered", "counter"},
      {"serve.drain.exited", "counter"},
      {"serve.drain.jobs_shed", "counter"},
      {"serve.restarts", "counter"},
      {"serve.restart.aborted_jobs", "counter"},
      // ---- counters: serving fleet (serve::register_fleet_metrics) ---------
      {"fleet.jobs_submitted", "counter"},
      {"fleet.jobs_dispatched", "counter"},
      {"fleet.jobs_queued", "counter"},
      {"fleet.jobs_shed", "counter"},
      {"fleet.jobs_failed", "counter"},
      {"fleet.jobs_degraded", "counter"},
      {"fleet.slo_met", "counter"},
      {"fleet.slo_missed", "counter"},
      {"fleet.probes", "counter"},
      {"fleet.quarantines", "counter"},
      {"fleet.readmissions", "counter"},
      {"fleet.steals", "counter"},
      {"fleet.batches", "counter"},
      {"fleet.batched_jobs", "counter"},
      {"fleet.drain.entered", "counter"},
      {"fleet.drain.exited", "counter"},
      {"fleet.drain.jobs_shed", "counter"},
      {"fleet.restarts", "counter"},
      {"fleet.restart.aborted_jobs", "counter"},
      {"fleet.shard_fails", "counter"},
      {"fleet.shard_partitions", "counter"},
      {"fleet.shard_heals", "counter"},
      {"fleet.failover_redispatches", "counter"},
      {"fleet.failover_requeues", "counter"},
      {"fleet.failover_lost", "counter"},
      {"fleet.failover_stale_completions", "counter"},
      {"fleet.integrity.detected", "counter"},
      {"fleet.integrity.escapes", "counter"},
      {"fleet.integrity.retries", "counter"},
      {"fleet.integrity.failed", "counter"},
      {"fleet.integrity.audits", "counter"},
      {"fleet.integrity.audit_mismatches", "counter"},
      {"recovery.arcs", "counter"},
      // ---- counters: chaos scenarios (scenario::register_scenario_metrics) -
      {"scenario.events", "counter"},
      {"scenario.fault_swaps", "counter"},
      {"scenario.verdicts_passed", "counter"},
      {"scenario.verdicts_failed", "counter"},
      // ---- histograms ------------------------------------------------------
      {"noc.dispatch_latency_cycles", "histogram"},
      {"noc.completion_latency_cycles", "histogram"},
      {"sync_unit.arrival_offset_cycles", "histogram"},
      {"sync_unit.time_to_threshold_cycles", "histogram"},
      {"shared_counter.arrival_offset_cycles", "histogram"},
      {"runtime.offload_total_cycles", "histogram"},
      {"serve.queue_wait_cycles", "histogram"},
      {"serve.queue_depth", "histogram"},
      {"serve.slack_cycles", "histogram"},
      {"serve.tardiness_cycles", "histogram"},
      {"fleet.queue_wait_cycles", "histogram"},
      {"fleet.queue_depth", "histogram"},
      {"fleet.batch_size", "histogram"},
      {"fleet.slack_cycles", "histogram"},
      {"fleet.tardiness_cycles", "histogram"},
      {"recovery.time_to_recover_cycles", "histogram"},
      // ---- spans: host runtime track ---------------------------------------
      {"offload", "span"},
      {"marshal", "span"},
      {"sync_setup", "span"},
      {"dispatch", "span"},
      {"wait", "span"},
      {"verify", "span"},
      {"epilogue", "span"},
      {"watchdog_wait", "span"},
      {"probe_round", "span"},
      {"probe", "span"},
      {"retry", "span"},
      {"redistribute", "span"},
      // ---- spans: cluster tracks -------------------------------------------
      {"job", "span"},
      {"wakeup_parse", "span"},
      {"team_wait", "span"},
      {"dma_in", "span"},
      {"compute", "span"},
      {"dma_out", "span"},
      {"notify", "span"},
  };
  return kReference;
}

}  // namespace mco::soc
