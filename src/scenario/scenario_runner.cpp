#include "scenario/scenario_runner.h"

#include <memory>
#include <stdexcept>

#include "check/protocol_monitor.h"
#include "serve/fleet.h"
#include "serve/fleet_chaos.h"
#include "serve/soc_executor.h"
#include "util/strings.h"

namespace mco::scenario {

void register_scenario_metrics(sim::StatsRegistry& stats) {
  stats.counter("scenario.events");
  stats.counter("scenario.fault_swaps");
  stats.counter("scenario.verdicts_passed");
  stats.counter("scenario.verdicts_failed");
}

namespace {

/// Value of a verdict metric. Scoped metrics re-aggregate the outcomes of
/// jobs arriving at or after `since`; episode-global metrics ignore it.
double metric_value(const std::string& metric, const ScenarioSpec& spec,
                    const ScenarioResult& r, const std::vector<serve::ServeJob>& trace,
                    sim::Cycle since) {
  if (metric == "time_to_recover")
    return static_cast<double>(serve::time_to_recover(trace, r.outcomes, since, spec.horizon));
  if (metric == "p99_slack") return serve::p99_slack(trace, r.outcomes, since);
  if (metric == "violations")
    return static_cast<double>(r.soc_violations + r.serve_violations);
  if (metric == "quarantines") return static_cast<double>(r.quarantines);
  if (metric == "readmissions") return static_cast<double>(r.readmissions);
  if (metric == "probes") return static_cast<double>(r.probes);
  if (metric == "restarts") return static_cast<double>(r.restarts);
  if (metric == "drains") return static_cast<double>(r.drains);
  if (metric == "crashes") return static_cast<double>(r.crashes);
  if (metric == "makespan") return static_cast<double>(r.makespan);
  if (metric == "detected_corruptions") return static_cast<double>(r.detected_corruptions);
  if (metric == "corruption_escapes") return static_cast<double>(r.corruption_escapes);

  std::uint64_t jobs = 0, met = 0, missed = 0, shed = 0, failed = 0;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    if (trace[i].arrival < since) continue;
    ++jobs;
    switch (r.outcomes[i].verdict) {
      case serve::JobVerdict::kMet: ++met; break;
      case serve::JobVerdict::kMissed: ++missed; break;
      case serve::JobVerdict::kShed: ++shed; break;
      case serve::JobVerdict::kFailed: ++failed; break;
    }
  }
  if (metric == "jobs") return static_cast<double>(jobs);
  if (metric == "met") return static_cast<double>(met);
  if (metric == "missed") return static_cast<double>(missed);
  if (metric == "shed") return static_cast<double>(shed);
  if (metric == "failed") return static_cast<double>(failed);
  if (metric == "slo_met")
    return jobs ? static_cast<double>(met) / static_cast<double>(jobs) : 0.0;
  throw std::invalid_argument("scenario: unknown verdict metric '" + metric + "'");
}

/// A `corrupt` verb as a FaultConfig: the fault environment live at the
/// event's cycle, with the requested silent-data-corruption mode(s) armed at
/// the requested rate against the requested victim cluster (or any).
fault::FaultConfig corruption_overlay(fault::FaultConfig base, const ScenarioEvent& ev) {
  if (!ev.clusters.empty()) base.target_cluster = ev.clusters.front();
  if (ev.label == "payload_flip" || ev.label == "mix") base.payload_flip_prob = ev.value;
  if (ev.label == "chunk_truncate" || ev.label == "mix") base.chunk_truncate_prob = ev.value;
  if (ev.label == "meta_corrupt" || ev.label == "mix") base.meta_corrupt_prob = ev.value;
  if (ev.label == "stale_read" || ev.label == "mix") base.stale_read_prob = ev.value;
  return base;
}

/// Judge the episode's `expect` lines and roll up the pass flag (shared by
/// the single-service and fleet paths).
void judge_verdicts(const ScenarioSpec& spec, const std::vector<serve::ServeJob>& trace,
                    sim::StatsRegistry& stats, ScenarioResult& r) {
  bool all_held = true;
  for (const VerdictSpec& v : spec.verdicts) {
    const sim::Cycle since = v.after.empty() ? 0 : spec.mark_cycle(v.after);
    VerdictResult vr;
    vr.text = v.text;
    vr.actual = metric_value(v.metric, spec, r, trace, since);
    vr.passed = verdict_holds(v.op, vr.actual, v.value);
    stats.counter(vr.passed ? "scenario.verdicts_passed" : "scenario.verdicts_failed").inc();
    all_held = all_held && vr.passed;
    r.verdicts.push_back(std::move(vr));
  }
  r.passed = all_held && r.soc_violations == 0 && r.serve_violations == 0;
}

/// Fleet episode (spec.shards > 1): the same script against a
/// serve::FleetRouter — one SocExecutor per shard, operator verbs scoped by
/// their shard argument, fault swaps applied to every shard's executor.
ScenarioResult run_fleet_scenario(const ScenarioSpec& spec, const ScenarioRunConfig& cfg) {
  const std::vector<serve::ServeJob> trace = scenario_trace(spec, cfg.model);

  std::vector<std::unique_ptr<serve::SocExecutor>> execs;
  std::vector<serve::Executor*> exec_ptrs;
  for (unsigned s = 0; s < spec.shards; ++s) {
    serve::SocExecutorConfig xc;
    xc.soc = soc::SocConfig::extended(spec.clusters);
    xc.soc.runtime.watchdog_wait_cycles = spec.watchdog_wait_cycles;
    xc.soc.runtime.max_retries = spec.max_retries;
    xc.soc.runtime.integrity.enabled = spec.integrity_checks;
    xc.soc.fault = spec.faults.active_at(0);
    xc.tolerance = cfg.tolerance;
    xc.workload_seed = cfg.workload_seed + s;
    xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
    execs.push_back(std::make_unique<serve::SocExecutor>(xc));
    exec_ptrs.push_back(execs.back().get());
  }

  serve::FleetConfig fc;
  fc.num_shards = spec.shards;
  fc.clusters_per_shard = spec.clusters;
  fc.model = cfg.model;
  fc.max_queue = spec.max_queue;
  fc.max_clusters_per_job = spec.clusters;
  fc.max_batch = spec.max_batch;
  fc.steal_policy = spec.steal_policy;
  fc.health = serve::HealthConfig{spec.failure_threshold, spec.probation_probes,
                                  spec.probe_backoff_cycles};
  fc.restart_penalty_cycles = spec.restart_penalty_cycles;
  fc.integrity.audit_fraction = spec.audit_fraction;
  serve::FleetRouter fleet(fc, exec_ptrs);

  sim::StatsRegistry stats;
  fleet.bind_stats(&stats);
  register_scenario_metrics(stats);
  check::ProtocolMonitor serve_monitor;
  serve_monitor.attach(fleet.trace());

  ScenarioResult r;
  r.name = spec.name;
  r.jobs = trace.size();

  std::uint64_t fault_swaps = 0;
  for (const fault::FaultSchedule::Step& step : spec.faults.steps()) {
    if (step.at == 0) continue;
    const fault::FaultConfig step_cfg = step.cfg;
    fleet.schedule_callback(step.at, [&execs, &fault_swaps, &stats, step_cfg] {
      for (auto& exec : execs) exec->set_fault(step_cfg);
      ++fault_swaps;
      stats.counter("scenario.fault_swaps").inc();
    });
  }
  // `set` callbacks accumulate onto one live config so successive keys
  // compose (each callback re-applies the whole struct it touched).
  auto live_health = std::make_shared<serve::HealthConfig>(fc.health);
  auto live_integrity = std::make_shared<serve::FleetConfig::IntegrityConfig>(fc.integrity);
  for (const ScenarioEvent& ev : spec.events) {
    stats.counter("scenario.events").inc();
    switch (ev.kind) {
      case ScenarioEventKind::kDrain:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kDrain, ev.shard);
        break;
      case ScenarioEventKind::kUndrain:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kUndrain, ev.shard);
        break;
      case ScenarioEventKind::kRestart:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kRestart, ev.shard);
        break;
      case ScenarioEventKind::kFail:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kFail, ev.shard);
        break;
      case ScenarioEventKind::kHeal:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kHeal, ev.shard);
        break;
      case ScenarioEventKind::kPartition:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kPartition, ev.shard);
        break;
      case ScenarioEventKind::kDrainClusters:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kDrainClusters, ev.shard,
                                ev.clusters);
        break;
      case ScenarioEventKind::kUndrainClusters:
        fleet.schedule_operator(ev.at, serve::OperatorAction::kUndrainClusters, ev.shard,
                                ev.clusters);
        break;
      case ScenarioEventKind::kCorrupt: {
        // Per-shard overlay on the fault environment live at the event's
        // cycle; a later `inject` swap replaces the whole environment,
        // corruption included.
        const fault::FaultConfig c = corruption_overlay(spec.faults.active_at(ev.at), ev);
        const unsigned shard = ev.shard;
        fleet.schedule_callback(ev.at, [&execs, shard, c] { execs[shard]->set_fault(c); });
        break;
      }
      case ScenarioEventKind::kSet:
        fleet.schedule_callback(
            ev.at, [&fleet, live_health, live_integrity, key = ev.label, value = ev.value] {
              if (key == "health.failure_threshold") {
                live_health->failure_threshold = static_cast<unsigned>(value);
                fleet.set_health_config(*live_health);
              } else if (key == "health.probation_probes") {
                live_health->probation_probes = static_cast<unsigned>(value);
                fleet.set_health_config(*live_health);
              } else if (key == "health.probe_backoff") {
                live_health->probe_backoff_cycles = static_cast<sim::Cycles>(value);
                fleet.set_health_config(*live_health);
              } else if (key == "integrity.audit") {
                live_integrity->audit_fraction = value;
                fleet.set_integrity(*live_integrity);
              } else {  // integrity.retries (the parser whitelists the keys)
                live_integrity->retry_budget = static_cast<unsigned>(value);
                fleet.set_integrity(*live_integrity);
              }
            });
        break;
      case ScenarioEventKind::kTraffic:
      case ScenarioEventKind::kInject:
      case ScenarioEventKind::kMark:
        break;
    }
  }

  r.outcomes = fleet.run(trace);
  serve_monitor.finish();

  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    const serve::JobOutcome& out = r.outcomes[i];
    switch (out.verdict) {
      case serve::JobVerdict::kMet:
        ++r.met;
        r.met_elements += trace[i].n;
        break;
      case serve::JobVerdict::kMissed: ++r.missed; break;
      case serve::JobVerdict::kShed: ++r.shed; break;
      case serve::JobVerdict::kFailed: ++r.failed; break;
    }
    if (out.degraded) ++r.degraded;
  }
  r.slo_attainment = r.jobs ? static_cast<double>(r.met) / static_cast<double>(r.jobs) : 0.0;
  r.makespan = fleet.makespan();
  r.goodput =
      r.makespan ? static_cast<double>(r.met_elements) / static_cast<double>(r.makespan) : 0.0;
  for (unsigned s = 0; s < spec.shards; ++s) {
    r.quarantines += fleet.health(s).quarantines();
    r.readmissions += fleet.health(s).readmissions();
    r.crashes += execs[s]->crashes();
    r.soc_violations += execs[s]->total_violations();
  }
  r.probes = stats.counter_value("fleet.probes");
  r.restarts = fleet.restarts();
  r.drains = stats.counter_value("fleet.drain.entered");
  r.fault_swaps = fault_swaps;
  r.detected_corruptions = fleet.corruptions_detected();
  r.corruption_escapes = fleet.corruption_escapes();
  r.integrity_retries = fleet.integrity_retries();
  r.audits = fleet.audits();
  r.serve_violations = serve_monitor.total_violations();

  judge_verdicts(spec, trace, stats, r);
  return r;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, const ScenarioRunConfig& cfg) {
  // Fleet-only fault-domain verbs force the FleetRouter path even at one
  // shard; plain single-service episodes keep the pre-fleet byte-identical
  // runner.
  if (spec.shards > 1 || spec.needs_fleet()) return run_fleet_scenario(spec, cfg);
  const std::vector<serve::ServeJob> trace = scenario_trace(spec, cfg.model);

  serve::SocExecutorConfig xc;
  xc.soc = soc::SocConfig::extended(spec.clusters);
  xc.soc.runtime.watchdog_wait_cycles = spec.watchdog_wait_cycles;
  xc.soc.runtime.max_retries = spec.max_retries;
  xc.soc.runtime.integrity.enabled = spec.integrity_checks;
  xc.soc.fault = spec.faults.active_at(0);
  xc.tolerance = cfg.tolerance;
  xc.workload_seed = cfg.workload_seed;
  xc.crash_penalty_cycles = cfg.crash_penalty_cycles;
  serve::SocExecutor exec(xc);

  serve::ServeConfig sc;
  sc.num_clusters = spec.clusters;
  sc.model = cfg.model;
  sc.max_queue = spec.max_queue;
  sc.max_clusters_per_job = spec.clusters;
  sc.health = serve::HealthConfig{spec.failure_threshold, spec.probation_probes,
                                  spec.probe_backoff_cycles};
  sc.restart_penalty_cycles = spec.restart_penalty_cycles;
  serve::OffloadService service(sc, exec);

  sim::StatsRegistry stats;
  service.bind_stats(&stats);
  register_scenario_metrics(stats);
  check::ProtocolMonitor serve_monitor;
  serve_monitor.attach(service.trace());

  ScenarioResult r;
  r.name = spec.name;
  r.jobs = trace.size();

  // Arm the script. Fault steps at cycle 0 are the executor's initial
  // environment (active_at(0) above); later steps swap in by timed callback.
  std::uint64_t fault_swaps = 0;
  for (const fault::FaultSchedule::Step& step : spec.faults.steps()) {
    if (step.at == 0) continue;
    const fault::FaultConfig step_cfg = step.cfg;
    service.schedule_callback(step.at, [&exec, &fault_swaps, &stats, step_cfg] {
      exec.set_fault(step_cfg);
      ++fault_swaps;
      stats.counter("scenario.fault_swaps").inc();
    });
  }
  auto live_health = std::make_shared<serve::HealthConfig>(sc.health);
  for (const ScenarioEvent& ev : spec.events) {
    stats.counter("scenario.events").inc();
    switch (ev.kind) {
      case ScenarioEventKind::kDrain:
        service.schedule_operator(ev.at, serve::OperatorAction::kDrain);
        break;
      case ScenarioEventKind::kUndrain:
        service.schedule_operator(ev.at, serve::OperatorAction::kUndrain);
        break;
      case ScenarioEventKind::kRestart:
        service.schedule_operator(ev.at, serve::OperatorAction::kRestart);
        break;
      case ScenarioEventKind::kSet:
        // Only health.* keys reach this path (integrity.* keys force the
        // fleet runner via needs_fleet()).
        service.schedule_callback(ev.at, [&service, live_health, key = ev.label,
                                          value = ev.value] {
          if (key == "health.failure_threshold") {
            live_health->failure_threshold = static_cast<unsigned>(value);
          } else if (key == "health.probation_probes") {
            live_health->probation_probes = static_cast<unsigned>(value);
          } else {  // health.probe_backoff
            live_health->probe_backoff_cycles = static_cast<sim::Cycles>(value);
          }
          service.set_health_config(*live_health);
        });
        break;
      case ScenarioEventKind::kTraffic:   // baked into the trace
      case ScenarioEventKind::kInject:    // armed via the fault schedule above
      case ScenarioEventKind::kMark:      // verdict scoping only
        break;
      case ScenarioEventKind::kFail:      // fleet-only: needs_fleet() routed
      case ScenarioEventKind::kHeal:      // these specs to the fleet path
      case ScenarioEventKind::kPartition:
      case ScenarioEventKind::kDrainClusters:
      case ScenarioEventKind::kUndrainClusters:
      case ScenarioEventKind::kCorrupt:
        throw std::logic_error("run_scenario: fleet-only event on the single-service path");
    }
  }

  r.outcomes = service.run(trace);
  serve_monitor.finish();

  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    const serve::JobOutcome& out = r.outcomes[i];
    switch (out.verdict) {
      case serve::JobVerdict::kMet:
        ++r.met;
        r.met_elements += trace[i].n;
        break;
      case serve::JobVerdict::kMissed: ++r.missed; break;
      case serve::JobVerdict::kShed: ++r.shed; break;
      case serve::JobVerdict::kFailed: ++r.failed; break;
    }
    if (out.degraded) ++r.degraded;
  }
  r.slo_attainment = r.jobs ? static_cast<double>(r.met) / static_cast<double>(r.jobs) : 0.0;
  r.makespan = service.makespan();
  r.goodput =
      r.makespan ? static_cast<double>(r.met_elements) / static_cast<double>(r.makespan) : 0.0;
  r.quarantines = service.health().quarantines();
  r.readmissions = service.health().readmissions();
  r.probes = stats.counter_value("serve.probes");
  r.restarts = service.restarts();
  r.drains = stats.counter_value("serve.drain.entered");
  r.fault_swaps = fault_swaps;
  r.crashes = exec.crashes();
  r.soc_violations = exec.total_violations();
  r.serve_violations = serve_monitor.total_violations();

  judge_verdicts(spec, trace, stats, r);
  return r;
}

std::string scenario_report_json(const std::vector<ScenarioResult>& results) {
  std::string out = "{\n  \"schema\": \"mco-scenario-v1\",\n  \"scenarios\": [";
  bool first = true;
  for (const ScenarioResult& r : results) {
    out += first ? "\n" : ",\n";
    first = false;
    out += util::format(
        "    {\"name\": \"%s\", \"jobs\": %zu, \"met\": %llu, \"missed\": %llu, "
        "\"shed\": %llu, \"failed\": %llu, \"degraded\": %llu, "
        "\"slo_attainment\": %.4f, \"met_elements\": %llu, \"goodput\": %.6f, "
        "\"makespan\": %llu, \"quarantines\": %llu, \"readmissions\": %llu, "
        "\"probes\": %llu, \"restarts\": %llu, \"drains\": %llu, "
        "\"fault_swaps\": %llu, \"crashes\": %llu, "
        "\"detected_corruptions\": %llu, \"corruption_escapes\": %llu, "
        "\"integrity_retries\": %llu, \"audits\": %llu, "
        "\"soc_violations\": %llu, "
        "\"serve_violations\": %llu, \"passed\": %s,\n     \"verdicts\": [",
        r.name.c_str(), r.jobs, static_cast<unsigned long long>(r.met),
        static_cast<unsigned long long>(r.missed), static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.failed), static_cast<unsigned long long>(r.degraded),
        r.slo_attainment, static_cast<unsigned long long>(r.met_elements), r.goodput,
        static_cast<unsigned long long>(r.makespan),
        static_cast<unsigned long long>(r.quarantines),
        static_cast<unsigned long long>(r.readmissions),
        static_cast<unsigned long long>(r.probes),
        static_cast<unsigned long long>(r.restarts),
        static_cast<unsigned long long>(r.drains),
        static_cast<unsigned long long>(r.fault_swaps),
        static_cast<unsigned long long>(r.crashes),
        static_cast<unsigned long long>(r.detected_corruptions),
        static_cast<unsigned long long>(r.corruption_escapes),
        static_cast<unsigned long long>(r.integrity_retries),
        static_cast<unsigned long long>(r.audits),
        static_cast<unsigned long long>(r.soc_violations),
        static_cast<unsigned long long>(r.serve_violations), r.passed ? "true" : "false");
    for (std::size_t i = 0; i < r.verdicts.size(); ++i) {
      const VerdictResult& v = r.verdicts[i];
      out += util::format("%s{\"text\": \"%s\", \"actual\": %.6g, \"passed\": %s}",
                          i ? ", " : "", v.text.c_str(), v.actual,
                          v.passed ? "true" : "false");
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mco::scenario
