#include "scenario/scenario.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "exp/spec.h"
#include "sim/rng.h"
#include "util/strings.h"

namespace mco::scenario {

namespace {

using exp::parse_dialect_f64;
using exp::parse_dialect_u64;

/// Split a line on runs of spaces/tabs (no empty tokens).
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

/// "1500" (cycles), "400us", "2ms" → cycles (1 GHz nominal clock).
sim::Cycle parse_time(const std::string& key, const std::string& v) {
  std::uint64_t scale = 1;
  std::string digits = v;
  if (v.size() > 2 && v.compare(v.size() - 2, 2, "us") == 0) {
    scale = 1'000;
    digits = v.substr(0, v.size() - 2);
  } else if (v.size() > 2 && v.compare(v.size() - 2, 2, "ms") == 0) {
    scale = 1'000'000;
    digits = v.substr(0, v.size() - 2);
  }
  return parse_dialect_u64(key, digits) * scale;
}

/// "LO..HI" or a single "V" (== V..V).
template <typename T, typename Parse>
std::pair<T, T> parse_range(const std::string& key, const std::string& v, Parse parse) {
  const std::size_t dots = v.find("..");
  if (dots == std::string::npos) {
    const T x = parse(key, v);
    return {x, x};
  }
  const T lo = parse(key, v.substr(0, dots));
  const T hi = parse(key, v.substr(dots + 2));
  if (hi < lo) {
    throw std::invalid_argument(
        util::format("key '%s' range '%s' has max below min", key.c_str(), v.c_str()));
  }
  return {lo, hi};
}

TrafficPhase profile_defaults(const std::string& profile) {
  TrafficPhase ph;
  ph.profile = profile;
  if (profile == "steady") {
    // header defaults
  } else if (profile == "burst") {
    ph.gap_min = 100;
    ph.gap_max = 400;
  } else if (profile == "lull") {
    ph.gap_min = 4000;
    ph.gap_max = 8000;
  } else if (profile == "mix") {
    // Priority-mix: tighter gaps and a wider slack spread, so priorities
    // decide who makes it out of the backlog.
    ph.gap_min = 400;
    ph.gap_max = 1600;
    ph.slack_min = 0.8;
    ph.slack_max = 2.2;
    ph.unmeetable_one_in = 16;
  } else {
    throw std::invalid_argument(util::format(
        "unknown traffic profile '%s' (expected steady, burst, lull or mix)", profile.c_str()));
  }
  return ph;
}

const std::vector<std::string>& scoped_metrics() {
  static const std::vector<std::string> kScoped = {
      "jobs", "met",     "missed",          "shed",     "failed",
      "slo_met", "time_to_recover", "p99_slack"};
  return kScoped;
}

/// Parse a "0,1,2" victim-cluster list (validated against the clusters
/// header: in range, duplicate-free, non-empty).
std::vector<unsigned> parse_cluster_set(const std::string& verb, const std::string& v,
                                        unsigned clusters) {
  std::vector<unsigned> out;
  std::string cur;
  const auto flush = [&]() {
    if (cur.empty()) {
      throw std::invalid_argument(verb + ": malformed cluster list '" + v + "'");
    }
    const std::uint64_t c = parse_dialect_u64("clusters", cur);
    if (c >= clusters) {
      throw std::invalid_argument(util::format("%s: cluster %llu out of range (clusters = %u)",
                                               verb.c_str(),
                                               static_cast<unsigned long long>(c), clusters));
    }
    if (std::find(out.begin(), out.end(), static_cast<unsigned>(c)) != out.end()) {
      throw std::invalid_argument(
          util::format("%s: duplicate cluster %llu in list", verb.c_str(),
                       static_cast<unsigned long long>(c)));
    }
    out.push_back(static_cast<unsigned>(c));
    cur.clear();
  };
  for (const char ch : v) {
    if (ch == ',') {
      flush();
    } else {
      cur += ch;
    }
  }
  flush();
  return out;
}

const std::vector<std::string>& global_metrics() {
  static const std::vector<std::string> kGlobal = {
      "violations", "quarantines", "readmissions", "probes",
      "restarts",   "drains",      "crashes",      "makespan",
      "detected_corruptions", "corruption_escapes"};
  return kGlobal;
}

/// Corruption modes a `corrupt` verb accepts ("mix" arms all four).
const std::vector<std::string>& corruption_modes() {
  static const std::vector<std::string> kModes = {
      "payload_flip", "chunk_truncate", "meta_corrupt", "stale_read", "mix"};
  return kModes;
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

const char* to_string(ScenarioEventKind k) {
  switch (k) {
    case ScenarioEventKind::kTraffic: return "traffic";
    case ScenarioEventKind::kInject: return "inject";
    case ScenarioEventKind::kDrain: return "drain";
    case ScenarioEventKind::kUndrain: return "undrain";
    case ScenarioEventKind::kRestart: return "restart";
    case ScenarioEventKind::kMark: return "mark";
    case ScenarioEventKind::kFail: return "fail";
    case ScenarioEventKind::kHeal: return "heal";
    case ScenarioEventKind::kPartition: return "partition";
    case ScenarioEventKind::kDrainClusters: return "drain_clusters";
    case ScenarioEventKind::kUndrainClusters: return "undrain_clusters";
    case ScenarioEventKind::kCorrupt: return "corrupt";
    case ScenarioEventKind::kSet: return "set";
  }
  return "?";
}

bool ScenarioSpec::needs_fleet() const {
  for (const ScenarioEvent& ev : events) {
    switch (ev.kind) {
      case ScenarioEventKind::kFail:
      case ScenarioEventKind::kHeal:
      case ScenarioEventKind::kPartition:
      case ScenarioEventKind::kDrainClusters:
      case ScenarioEventKind::kUndrainClusters:
      case ScenarioEventKind::kCorrupt: return true;
      case ScenarioEventKind::kSet:
        // health.* applies on either path; integrity.* configures the
        // FleetRouter's conviction machinery.
        if (ev.label.rfind("integrity.", 0) == 0) return true;
        break;
      default: break;
    }
  }
  return false;
}

const std::vector<SettableKeyInfo>& scenario_settable_keys() {
  static const std::vector<SettableKeyInfo> kKeys = {
      {"health.failure_threshold", "count"},
      {"health.probation_probes", "count"},
      {"health.probe_backoff", "time"},
      {"integrity.audit", "fraction"},
      {"integrity.retries", "count"},
  };
  return kKeys;
}

sim::Cycle ScenarioSpec::mark_cycle(const std::string& mark) const {
  for (const auto& [name, cycle] : marks) {
    if (name == mark) return cycle;
  }
  throw std::invalid_argument("scenario: unknown mark '" + mark + "'");
}

ScenarioSpec load_scenario_text(const std::string& text) {
  ScenarioSpec spec;
  bool saw_horizon = false;
  bool saw_script = false;            ///< any `at`/`expect` line seen yet
  std::map<unsigned, bool> draining;  ///< script-order drain pairing, per shard
  std::map<unsigned, bool> downs;     ///< fail/partition ... heal pairing, per shard
  std::map<std::pair<unsigned, unsigned>, bool> drained_clusters;  ///< (shard, cluster)
  sim::Cycle last_at = 0;
  bool saw_at = false;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tok = tokens_of(line);
    if (tok.empty()) continue;
    try {
      if (tok[0] == "at") {
        saw_script = true;
        if (tok.size() < 3) {
          throw std::invalid_argument("expected 'at <time> <verb> ...'");
        }
        const sim::Cycle at = parse_time("at", tok[1]);
        if (saw_at && at < last_at) {
          throw std::invalid_argument(util::format(
              "event at cycle %llu precedes the previous event at %llu (script times "
              "must be non-decreasing)",
              static_cast<unsigned long long>(at), static_cast<unsigned long long>(last_at)));
        }
        saw_at = true;
        last_at = at;
        const std::string& verb = tok[2];
        if (verb == "traffic") {
          if (tok.size() < 4) throw std::invalid_argument("traffic: missing profile");
          TrafficPhase ph = profile_defaults(tok[3]);
          ph.start = at;
          for (std::size_t i = 4; i < tok.size(); ++i) {
            const std::size_t eq = tok[i].find('=');
            if (eq == std::string::npos) {
              throw std::invalid_argument("traffic: expected 'key=value', got '" + tok[i] + "'");
            }
            const std::string key = tok[i].substr(0, eq);
            const std::string val = tok[i].substr(eq + 1);
            if (key == "gap") {
              std::tie(ph.gap_min, ph.gap_max) = parse_range<sim::Cycles>(
                  key, val, [](const std::string& k, const std::string& s) {
                    return parse_dialect_u64(k, s);
                  });
              if (ph.gap_min == 0) throw std::invalid_argument("traffic: gap must be >= 1");
            } else if (key == "n") {
              std::tie(ph.n_scale_min, ph.n_scale_max) = parse_range<std::uint64_t>(
                  key, val, [](const std::string& k, const std::string& s) {
                    return parse_dialect_u64(k, s);
                  });
              if (ph.n_scale_min == 0) throw std::invalid_argument("traffic: n must be >= 1");
            } else if (key == "slack") {
              std::tie(ph.slack_min, ph.slack_max) = parse_range<double>(
                  key, val, [](const std::string& k, const std::string& s) {
                    return parse_dialect_f64(k, s);
                  });
              if (!(ph.slack_min > 0.0))
                throw std::invalid_argument("traffic: slack must be > 0");
            } else if (key == "priority") {
              const auto [lo, hi] = parse_range<std::uint64_t>(
                  key, val, [](const std::string& k, const std::string& s) {
                    return parse_dialect_u64(k, s);
                  });
              ph.priority_min = static_cast<unsigned>(lo);
              ph.priority_max = static_cast<unsigned>(hi);
            } else if (key == "unmeetable") {
              ph.unmeetable_one_in = parse_dialect_u64(key, val);
            } else {
              throw std::invalid_argument("traffic: unknown argument '" + key + "'");
            }
          }
          spec.phases.push_back(ph);
          spec.events.push_back({at, ScenarioEventKind::kTraffic, tok[3]});
        } else if (verb == "inject") {
          if (tok.size() < 4) throw std::invalid_argument("inject: missing fault preset");
          std::string preset = tok[3];
          std::int64_t cluster = -2;  ///< -2 = not given; presets keep their own
          const std::size_t eq = preset.find('=');
          if (eq != std::string::npos) {
            // `inject sick_cluster=3`: preset with a victim-cluster override.
            cluster = static_cast<std::int64_t>(
                parse_dialect_u64(preset.substr(0, eq), preset.substr(eq + 1)));
            preset = preset.substr(0, eq);
          }
          for (std::size_t i = 4; i < tok.size(); ++i) {
            const std::size_t aeq = tok[i].find('=');
            const std::string key =
                aeq == std::string::npos ? tok[i] : tok[i].substr(0, aeq);
            if (key != "cluster" || aeq == std::string::npos) {
              throw std::invalid_argument("inject: unknown argument '" + tok[i] + "'");
            }
            cluster = static_cast<std::int64_t>(
                parse_dialect_u64(key, tok[i].substr(aeq + 1)));
          }
          fault::FaultConfig cfg = fault::fault_preset(preset, spec.seed);
          if (cluster != -2) cfg.target_cluster = cluster;
          spec.faults.add(at, cfg, preset);
          spec.events.push_back({at, ScenarioEventKind::kInject, preset});
        } else if (verb == "drain" || verb == "undrain" || verb == "restart" ||
                   verb == "fail" || verb == "heal" || verb == "partition") {
          // Operator verbs share one argument grammar: an optional shard
          // scope (`drain shard=2`; `restart shard=*` is the rolling wave),
          // an optional `clusters=0,1` victim list (drain/undrain only) and
          // an optional `stagger=<time>` (rolling restart only). Headers
          // precede the script, so spec.shards / spec.clusters are known.
          unsigned shard = 0;
          bool all_shards = false;
          bool saw_stagger = false;
          sim::Cycles stagger = spec.restart_penalty_cycles;
          std::vector<unsigned> victim_clusters;
          for (std::size_t i = 3; i < tok.size(); ++i) {
            const std::size_t eq = tok[i].find('=');
            const std::string key = eq == std::string::npos ? tok[i] : tok[i].substr(0, eq);
            const std::string val = eq == std::string::npos ? "" : tok[i].substr(eq + 1);
            if (key == "shard" && eq != std::string::npos) {
              if (val == "*") {
                if (verb != "restart") {
                  throw std::invalid_argument(verb + ": shard=* is only valid with restart");
                }
                all_shards = true;
                continue;
              }
              const std::uint64_t s = parse_dialect_u64("shard", val);
              if (s >= spec.shards) {
                throw std::invalid_argument(util::format(
                    "%s: shard %llu out of range (shards = %u)", verb.c_str(),
                    static_cast<unsigned long long>(s), spec.shards));
              }
              shard = static_cast<unsigned>(s);
            } else if (key == "clusters" && eq != std::string::npos &&
                       (verb == "drain" || verb == "undrain")) {
              victim_clusters = parse_cluster_set(verb, val, spec.clusters);
            } else if (key == "stagger" && eq != std::string::npos && verb == "restart") {
              stagger = parse_time("stagger", val);
              saw_stagger = true;
            } else {
              throw std::invalid_argument(verb + ": unknown argument '" + tok[i] + "'");
            }
          }
          if (saw_stagger && !all_shards) {
            throw std::invalid_argument("restart: stagger requires shard=*");
          }
          if (verb == "fail" || verb == "partition") {
            if (downs[shard]) {
              throw std::invalid_argument(
                  util::format("%s: shard %u is already down", verb.c_str(), shard));
            }
            downs[shard] = true;
            spec.events.push_back({at,
                                   verb == "fail" ? ScenarioEventKind::kFail
                                                  : ScenarioEventKind::kPartition,
                                   "", shard});
          } else if (verb == "heal") {
            if (!downs[shard]) {
              throw std::invalid_argument(util::format("heal: shard %u is not down", shard));
            }
            downs[shard] = false;
            spec.events.push_back({at, ScenarioEventKind::kHeal, "", shard});
          } else if (verb == "drain" && !victim_clusters.empty()) {
            if (downs[shard]) {
              throw std::invalid_argument(
                  util::format("drain: shard %u is down (heal it first)", shard));
            }
            for (const unsigned c : victim_clusters) {
              if (drained_clusters[{shard, c}]) {
                throw std::invalid_argument(util::format(
                    "drain: cluster %u of shard %u is already drained", c, shard));
              }
              drained_clusters[{shard, c}] = true;
            }
            spec.events.push_back(
                {at, ScenarioEventKind::kDrainClusters, "", shard, victim_clusters});
          } else if (verb == "undrain" && !victim_clusters.empty()) {
            if (downs[shard]) {
              throw std::invalid_argument(
                  util::format("undrain: shard %u is down (heal it first)", shard));
            }
            for (const unsigned c : victim_clusters) {
              if (!drained_clusters[{shard, c}]) {
                throw std::invalid_argument(util::format(
                    "undrain: cluster %u of shard %u is not drained", c, shard));
              }
              drained_clusters[{shard, c}] = false;
            }
            spec.events.push_back(
                {at, ScenarioEventKind::kUndrainClusters, "", shard, victim_clusters});
          } else if (verb == "drain") {
            if (draining[shard]) {
              throw std::invalid_argument(
                  util::format("drain: shard %u is already draining", shard));
            }
            if (downs[shard]) {
              throw std::invalid_argument(
                  util::format("drain: shard %u is down (heal it first)", shard));
            }
            draining[shard] = true;
            spec.events.push_back({at, ScenarioEventKind::kDrain, "", shard});
          } else if (verb == "undrain") {
            if (!draining[shard]) {
              throw std::invalid_argument(
                  util::format("undrain: shard %u is not draining", shard));
            }
            draining[shard] = false;
            spec.events.push_back({at, ScenarioEventKind::kUndrain, "", shard});
          } else if (all_shards) {
            // Rolling wave: one restart per shard, `stagger` cycles apart
            // (default: the restart penalty, so each shard is rebuilding
            // while the previous one probes back in). Script time stays at
            // the wave's start; the expansion carries its own offsets.
            for (unsigned s = 0; s < spec.shards; ++s) {
              if (downs[s]) {
                throw std::invalid_argument(
                    util::format("restart: shard %u is down (heal it first)", s));
              }
              spec.events.push_back({at + static_cast<sim::Cycle>(s) * stagger,
                                     ScenarioEventKind::kRestart, "", s});
            }
          } else {
            if (downs[shard]) {
              throw std::invalid_argument(
                  util::format("restart: shard %u is down (heal it first)", shard));
            }
            spec.events.push_back({at, ScenarioEventKind::kRestart, "", shard});
          }
        } else if (verb == "corrupt") {
          // `corrupt [shard=K] [cluster=C] rate=P [mode=M]`: silent-data-
          // corruption on one shard's completion-gather path. rate is
          // mandatory; mode defaults to payload_flip; omitting cluster hits
          // any cluster of the shard.
          unsigned shard = 0;
          std::vector<unsigned> victim;
          double rate = -1.0;
          std::string mode = "payload_flip";
          for (std::size_t i = 3; i < tok.size(); ++i) {
            const std::size_t eq = tok[i].find('=');
            const std::string key = eq == std::string::npos ? tok[i] : tok[i].substr(0, eq);
            const std::string val = eq == std::string::npos ? "" : tok[i].substr(eq + 1);
            if (key == "shard" && eq != std::string::npos) {
              const std::uint64_t s = parse_dialect_u64("shard", val);
              if (s >= spec.shards) {
                throw std::invalid_argument(util::format(
                    "corrupt: shard %llu out of range (shards = %u)",
                    static_cast<unsigned long long>(s), spec.shards));
              }
              shard = static_cast<unsigned>(s);
            } else if (key == "cluster" && eq != std::string::npos) {
              const std::uint64_t c = parse_dialect_u64("cluster", val);
              if (c >= spec.clusters) {
                throw std::invalid_argument(util::format(
                    "corrupt: cluster %llu out of range (clusters = %u)",
                    static_cast<unsigned long long>(c), spec.clusters));
              }
              victim.assign(1, static_cast<unsigned>(c));
            } else if (key == "rate" && eq != std::string::npos) {
              rate = parse_dialect_f64("rate", val);
              if (!(rate > 0.0) || rate > 1.0) {
                throw std::invalid_argument("corrupt: rate must be in (0, 1]");
              }
            } else if (key == "mode" && eq != std::string::npos) {
              if (!contains(corruption_modes(), val)) {
                throw std::invalid_argument(
                    "corrupt: unknown mode '" + val +
                    "' (expected payload_flip, chunk_truncate, meta_corrupt, "
                    "stale_read or mix)");
              }
              mode = val;
            } else {
              throw std::invalid_argument("corrupt: unknown argument '" + tok[i] + "'");
            }
          }
          if (rate < 0.0) throw std::invalid_argument("corrupt: missing rate=<p>");
          if (downs[shard]) {
            throw std::invalid_argument(
                util::format("corrupt: shard %u is down (heal it first)", shard));
          }
          ScenarioEvent ev{at, ScenarioEventKind::kCorrupt, mode, shard, victim};
          ev.value = rate;
          spec.events.push_back(std::move(ev));
        } else if (verb == "set") {
          // `set <dotted.key>=<value>`: a scripted mid-episode config change.
          // The key must be whitelisted in scenario_settable_keys(); the
          // value is validated here by the key's kind.
          if (tok.size() != 4 || tok[3].find('=') == std::string::npos) {
            throw std::invalid_argument("set: expected 'set <dotted.key>=<value>'");
          }
          const std::size_t eq = tok[3].find('=');
          const std::string key = tok[3].substr(0, eq);
          const std::string val = tok[3].substr(eq + 1);
          const SettableKeyInfo* info = nullptr;
          for (const SettableKeyInfo& k : scenario_settable_keys()) {
            if (key == k.name) info = &k;
          }
          if (!info) {
            std::string known;
            for (const SettableKeyInfo& k : scenario_settable_keys()) {
              known += known.empty() ? "" : ", ";
              known += k.name;
            }
            throw std::invalid_argument("set: unknown key '" + key + "' (settable: " +
                                        known + ")");
          }
          double value = 0.0;
          if (std::string(info->kind) == "time") {
            value = static_cast<double>(parse_time(key, val));
          } else if (std::string(info->kind) == "fraction") {
            value = parse_dialect_f64(key, val);
            if (value < 0.0 || value > 1.0) {
              throw std::invalid_argument("set: " + key + " must be in [0, 1]");
            }
          } else {
            value = static_cast<double>(parse_dialect_u64(key, val));
            if (value == 0.0 && key != "integrity.retries") {
              throw std::invalid_argument("set: " + key + " must be >= 1");
            }
          }
          ScenarioEvent ev{at, ScenarioEventKind::kSet, key};
          ev.value = value;
          spec.events.push_back(std::move(ev));
        } else if (verb == "mark") {
          if (tok.size() != 4) throw std::invalid_argument("mark: expected one mark name");
          for (const auto& [name, cycle] : spec.marks) {
            (void)cycle;
            if (name == tok[3]) {
              throw std::invalid_argument("mark: duplicate mark '" + tok[3] + "'");
            }
          }
          spec.marks.emplace_back(tok[3], at);
          spec.events.push_back({at, ScenarioEventKind::kMark, tok[3]});
        } else {
          throw std::invalid_argument(
              "unknown verb '" + verb +
              "' (expected traffic, inject, drain, undrain, restart, fail, heal, "
              "partition, corrupt, set or mark)");
        }
      } else if (tok[0] == "expect") {
        saw_script = true;
        // expect <metric> <op> <value> [after <mark>]
        if (tok.size() != 4 && tok.size() != 6) {
          throw std::invalid_argument("expected 'expect <metric> <op> <value> [after <mark>]'");
        }
        VerdictSpec v;
        v.metric = tok[1];
        v.op = tok[2];
        const bool scoped = contains(scoped_metrics(), v.metric);
        if (!scoped && !contains(global_metrics(), v.metric)) {
          throw std::invalid_argument("expect: unknown metric '" + v.metric + "'");
        }
        static const char* kOps[] = {"==", "!=", "<=", ">=", "<", ">"};
        bool op_ok = false;
        for (const char* op : kOps) op_ok = op_ok || v.op == op;
        if (!op_ok) {
          throw std::invalid_argument("expect: unknown operator '" + v.op +
                                      "' (expected ==, !=, <=, >=, < or >)");
        }
        v.value = parse_dialect_f64("expect " + v.metric, tok[3]);
        if (tok.size() == 6) {
          if (tok[4] != "after") {
            throw std::invalid_argument("expect: expected 'after <mark>', got '" + tok[4] + "'");
          }
          if (!scoped) {
            throw std::invalid_argument(
                "expect: metric '" + v.metric +
                "' is episode-global and cannot be scoped with 'after'");
          }
          v.after = tok[5];
        }
        v.text = v.metric + " " + v.op + " " + tok[3] +
                 (v.after.empty() ? "" : " after " + v.after);
        spec.verdicts.push_back(std::move(v));
      } else {
        // Header line: key = value (tokens "key", "=", "value" or "key=value").
        if (saw_script) {
          throw std::invalid_argument("header key '" + tok[0] +
                                      "' after the first script line (headers go first)");
        }
        std::string key;
        std::string value;
        if (tok.size() == 3 && tok[1] == "=") {
          key = tok[0];
          value = tok[2];
        } else if (tok.size() == 1 && tok[0].find('=') != std::string::npos) {
          const std::size_t eq = tok[0].find('=');
          key = tok[0].substr(0, eq);
          value = tok[0].substr(eq + 1);
        } else {
          throw std::invalid_argument("expected 'key = value', 'at ...' or 'expect ...'");
        }
        if (key == "name") {
          spec.name = value;
        } else if (key == "shards") {
          const std::uint64_t s = parse_dialect_u64(key, value);
          if (s == 0 || s > 16)
            throw std::invalid_argument("shards must be in [1, 16]");
          spec.shards = static_cast<unsigned>(s);
        } else if (key == "clusters") {
          const std::uint64_t c = parse_dialect_u64(key, value);
          if (c == 0 || c > 64)
            throw std::invalid_argument("clusters must be in [1, 64]");
          spec.clusters = static_cast<unsigned>(c);
        } else if (key == "seed") {
          spec.seed = parse_dialect_u64(key, value);
        } else if (key == "horizon") {
          spec.horizon = parse_time(key, value);
          if (spec.horizon == 0) throw std::invalid_argument("horizon must be >= 1");
          saw_horizon = true;
        } else if (key == "queue") {
          const std::uint64_t q = parse_dialect_u64(key, value);
          if (q == 0) throw std::invalid_argument("queue must be >= 1");
          spec.max_queue = static_cast<std::size_t>(q);
        } else if (key == "failure_threshold") {
          const std::uint64_t t = parse_dialect_u64(key, value);
          if (t == 0) throw std::invalid_argument("failure_threshold must be >= 1");
          spec.failure_threshold = static_cast<unsigned>(t);
        } else if (key == "probation_probes") {
          const std::uint64_t p = parse_dialect_u64(key, value);
          if (p == 0) throw std::invalid_argument("probation_probes must be >= 1");
          spec.probation_probes = static_cast<unsigned>(p);
        } else if (key == "probe_backoff") {
          spec.probe_backoff_cycles = parse_time(key, value);
        } else if (key == "restart_penalty") {
          spec.restart_penalty_cycles = parse_time(key, value);
        } else if (key == "watchdog") {
          spec.watchdog_wait_cycles = parse_time(key, value);
        } else if (key == "retries") {
          spec.max_retries = static_cast<unsigned>(parse_dialect_u64(key, value));
        } else if (key == "integrity") {
          if (value == "on") {
            spec.integrity_checks = true;
          } else if (value == "off") {
            spec.integrity_checks = false;
          } else {
            throw std::invalid_argument("integrity must be 'on' or 'off'");
          }
        } else if (key == "audit") {
          spec.audit_fraction = parse_dialect_f64(key, value);
          if (spec.audit_fraction < 0.0 || spec.audit_fraction > 1.0) {
            throw std::invalid_argument("audit must be in [0, 1]");
          }
        } else if (key == "batch") {
          const std::uint64_t b = parse_dialect_u64(key, value);
          if (b == 0) throw std::invalid_argument("batch must be >= 1");
          spec.max_batch = static_cast<std::size_t>(b);
        } else if (key == "steal") {
          if (value == "head") {
            spec.steal_policy = serve::StealPolicy::kBacklogHead;
          } else if (value == "slack") {
            spec.steal_policy = serve::StealPolicy::kTightestSlack;
          } else {
            throw std::invalid_argument("steal must be 'head' or 'slack'");
          }
        } else {
          throw std::invalid_argument("unknown header key '" + key + "'");
        }
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(util::format("scenario line %d: %s", lineno, e.what()));
    }
  }

  if (!saw_horizon) {
    throw std::invalid_argument("scenario: missing required header 'horizon = <time>'");
  }
  for (const VerdictSpec& v : spec.verdicts) {
    if (!v.after.empty()) spec.mark_cycle(v.after);  // throws on unknown mark
  }
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_scenario_file: cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return load_scenario_text(ss.str());
}

std::vector<serve::ServeJob> scenario_trace(const ScenarioSpec& spec,
                                            const model::RuntimeModel& model) {
  std::vector<serve::ServeJob> jobs;
  if (spec.phases.empty()) return jobs;
  // The active phase at an arrival instant is the last phase that started at
  // or before it (phases are script-ordered, times non-decreasing).
  const auto phase_at = [&spec](sim::Cycle t) -> const TrafficPhase& {
    const TrafficPhase* live = &spec.phases.front();
    for (const TrafficPhase& ph : spec.phases) {
      if (ph.start > t) break;
      live = &ph;
    }
    return *live;
  };

  sim::Rng rng(spec.seed);
  sim::Cycle arrival = spec.phases.front().start;
  std::uint64_t id = 0;
  while (arrival <= spec.horizon) {
    const TrafficPhase& ph = phase_at(arrival);
    serve::ServeJob job;
    job.id = ++id;
    job.n = 256 * (ph.n_scale_min + rng.next_below(ph.n_scale_max - ph.n_scale_min + 1));
    job.arrival = arrival;
    const unsigned m_target = 1u << rng.next_below(4);
    const double slack = rng.uniform(ph.slack_min, ph.slack_max);
    job.t_max = static_cast<sim::Cycles>(model.predict(m_target, job.n) * slack);
    job.priority = ph.priority_min +
                   static_cast<unsigned>(rng.next_below(ph.priority_max - ph.priority_min + 1));
    if (ph.unmeetable_one_in > 0 && rng.next_below(ph.unmeetable_one_in) == 0) {
      // Guaranteed Eq.-(3) shed, as in the E19 generator.
      job.t_max = static_cast<sim::Cycles>(model.t0 / 2.0);
    }
    jobs.push_back(job);
    arrival += ph.gap_min + rng.next_below(ph.gap_max - ph.gap_min + 1);
  }
  return jobs;
}

bool verdict_holds(const std::string& op, double actual, double expected) {
  if (op == "==") return actual == expected;
  if (op == "!=") return actual != expected;
  if (op == "<=") return actual <= expected;
  if (op == ">=") return actual >= expected;
  if (op == "<") return actual < expected;
  if (op == ">") return actual > expected;
  throw std::invalid_argument("verdict_holds: unknown operator '" + op + "'");
}

const std::vector<KeywordInfo>& scenario_keyword_reference() {
  // One row per accepted dialect keyword. docs/scenarios.md's keyword
  // reference tables list exactly these names; scripts/check_metrics_docs.py
  // cross-checks them (same extraction as the metric inventory).
  static const std::vector<KeywordInfo> kReference = {
      {"name", "header"},
      {"shards", "header"},
      {"clusters", "header"},
      {"seed", "header"},
      {"horizon", "header"},
      {"queue", "header"},
      {"failure_threshold", "header"},
      {"probation_probes", "header"},
      {"probe_backoff", "header"},
      {"restart_penalty", "header"},
      {"watchdog", "header"},
      {"retries", "header"},
      {"integrity", "header"},
      {"audit", "header"},
      {"batch", "header"},
      {"steal", "header"},
      {"traffic", "verb"},
      {"inject", "verb"},
      {"drain", "verb"},
      {"undrain", "verb"},
      {"restart", "verb"},
      {"fail", "verb"},
      {"heal", "verb"},
      {"partition", "verb"},
      {"corrupt", "verb"},
      {"set", "verb"},
      {"mark", "verb"},
      {"steady", "profile"},
      {"burst", "profile"},
      {"lull", "profile"},
      {"mix", "profile"},
      {"none", "preset"},
      {"sick_cluster", "preset"},
      {"dispatch_drop", "preset"},
      {"dispatch_delay", "preset"},
      {"credit_drop", "preset"},
      {"credit_duplicate", "preset"},
      {"irq_swallow", "preset"},
      {"cluster_hang", "preset"},
      {"cluster_straggle", "preset"},
      {"dma_stall", "preset"},
      {"chaos", "preset"},
      {"gap", "arg"},
      {"n", "arg"},
      {"slack", "arg"},
      {"priority", "arg"},
      {"unmeetable", "arg"},
      {"cluster", "arg"},
      {"shard", "arg"},
      {"clusters", "arg"},
      {"stagger", "arg"},
      {"rate", "arg"},
      {"mode", "arg"},
      {"payload_flip", "mode"},
      {"chunk_truncate", "mode"},
      {"meta_corrupt", "mode"},
      {"stale_read", "mode"},
      {"mix", "mode"},
      {"health.failure_threshold", "setting"},
      {"health.probation_probes", "setting"},
      {"health.probe_backoff", "setting"},
      {"integrity.audit", "setting"},
      {"integrity.retries", "setting"},
      {"jobs", "metric"},
      {"met", "metric"},
      {"missed", "metric"},
      {"shed", "metric"},
      {"failed", "metric"},
      {"slo_met", "metric"},
      {"time_to_recover", "metric"},
      {"p99_slack", "metric"},
      {"violations", "metric"},
      {"quarantines", "metric"},
      {"readmissions", "metric"},
      {"probes", "metric"},
      {"restarts", "metric"},
      {"drains", "metric"},
      {"crashes", "metric"},
      {"makespan", "metric"},
      {"detected_corruptions", "metric"},
      {"corruption_escapes", "metric"},
  };
  return kReference;
}

}  // namespace mco::scenario
