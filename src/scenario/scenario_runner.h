// Executes a parsed chaos scenario against a live service and judges it.
//
// One run = one OffloadService over one long-lived SocExecutor, with the
// scenario's fault schedule swapped in by timed callbacks, operator actions
// (drain/undrain/restart) scheduled into the service's virtual-time event
// loop, and a check::ProtocolMonitor riding the service trace (a second one
// rides the backing Soc inside the executor). A `shards = N` header (N > 1)
// runs the same script against a serve::FleetRouter instead — one
// SocExecutor per shard, shard-scoped operator verbs, fault swaps applied
// fleet-wide. After the episode, every
// `expect` line is evaluated — scoped verdicts only over jobs arriving at or
// after their mark — and the result rolls up into one golden-pinnable row.
//
// Determinism: the trace, the event script and the executor are pure
// functions of the spec, so a scenario's row (and the whole "mco-scenario-v1"
// report, see scenario_report_json) is byte-identical at any --jobs level
// when run through exp::SweepRunner::map's index-addressed slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/runtime_model.h"
#include "scenario/scenario.h"
#include "serve/offload_service.h"
#include "sim/stats.h"

namespace mco::scenario {

/// Executor/model parameters shared by every scenario of a catalog run
/// (the per-episode knobs live in the scenario file itself).
struct ScenarioRunConfig {
  /// Admission model (Eq. 3); defaults to the paper's DAXPY fit.
  model::RuntimeModel model = model::paper_daxpy_model();
  double tolerance = 1e-5;
  std::uint64_t workload_seed = 42;
  sim::Cycles crash_penalty_cycles = 20'000;
};

/// One evaluated `expect` line.
struct VerdictResult {
  std::string text;    ///< canonical rendering of the expect line
  double actual = 0.0; ///< measured value the expectation was checked against
  bool passed = false;
};

/// Aggregates of one episode, plus its judged verdicts and per-job outcomes.
struct ScenarioResult {
  std::string name;
  std::size_t jobs = 0;
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;
  double slo_attainment = 0.0;     ///< met / jobs, whole episode
  std::uint64_t met_elements = 0;  ///< Σ n over SLO-met jobs
  double goodput = 0.0;            ///< met_elements / makespan (elems/cycle)
  sim::Cycle makespan = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t probes = 0;
  std::uint64_t restarts = 0;      ///< operator restarts performed
  std::uint64_t drains = 0;        ///< operator drain windows entered
  std::uint64_t fault_swaps = 0;   ///< timed fault-environment changes (t > 0)
  std::uint64_t crashes = 0;       ///< Soc rebuilds forced by aborted offloads
  std::uint64_t detected_corruptions = 0;  ///< convicted members (digest + audit)
  std::uint64_t corruption_escapes = 0;    ///< silently wrong results delivered
  std::uint64_t integrity_retries = 0;     ///< disjoint re-executions performed
  std::uint64_t audits = 0;                ///< dual-execution audits run
  std::uint64_t soc_violations = 0;
  std::uint64_t serve_violations = 0;
  std::vector<VerdictResult> verdicts;
  bool passed = false;  ///< every verdict held and no invariant violations
  std::vector<serve::JobOutcome> outcomes;
};

/// Run one scenario end to end and evaluate its verdicts.
ScenarioResult run_scenario(const ScenarioSpec& spec, const ScenarioRunConfig& cfg);

/// "mco-scenario-v1" JSON: one row per scenario — aggregates plus judged
/// verdicts — the bench_scenario golden scripts/metrics_regression.py pins.
std::string scenario_report_json(const std::vector<ScenarioResult>& results);

/// Eagerly create every scenario.* counter in `stats` (see
/// soc/observability's metric_reference); run_scenario does this on its
/// private registry, tests and benches may too.
void register_scenario_metrics(sim::StatsRegistry& stats);

}  // namespace mco::scenario
