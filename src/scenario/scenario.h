// Declarative chaos scenarios: a timed fault/traffic/operator episode as data.
//
// A scenario file scripts one full "fault → degrade → operator intervenes →
// recover" episode against the serving layer (serve/offload_service.h), in
// the same "key = value" text dialect family as exp/spec.h and soc/config_io:
//
//   name = sick_cluster_drain_restart
//   clusters = 8
//   seed = 7
//   horizon = 400us                  # episode length (cycles; us/ms suffixes)
//
//   at 0 traffic steady              # phases of the E19 soak generator
//   at 50us inject sick_cluster      # timed fault-injector activations
//   at 120us drain                   # operator actions (serve::OperatorAction)
//   at 130us restart
//   at 150us undrain
//   at 150us mark recovery           # named instant for scoped verdicts
//   expect slo_met >= 0.90 after recovery
//   expect violations == 0
//
// Fleet fault domains (shards >= 1; these verbs force the FleetRouter path):
//
//   at 100us fail shard=1            # crash-stop; jobs fail over to peers
//   at 180us heal shard=1            # crash heal = restart + quarantine
//   at 100us partition shard=1       # router loses the shard; it keeps going
//   at 60us  drain clusters=0,1      # partial drain of one shard's fabric
//   at 90us  undrain clusters=0,1
//   at 200us restart shard=* stagger=30us   # rolling wave, one shard a step
//   expect time_to_recover <= 120000 after hit   # cycles to sustained SLO
//   expect p99_slack >= 0 after hit              # −(p99 tardiness), cycles
//
// End-to-end integrity (silent data corruption; these verbs also force the
// FleetRouter path — conviction/retry/audit machinery is fleet-level):
//
//   integrity = on                   # per-chunk digest attestation (header)
//   audit = 0.25                     # dual-execute fraction of clean jobs
//   at 100us corrupt shard=0 cluster=2 rate=0.9 mode=payload_flip
//   at 150us set health.failure_threshold=1   # scripted config change
//   expect detected_corruptions >= 1
//   expect corruption_escapes == 0
//
// `set <dotted.key>=<value>` accepts exactly the keys in
// scenario_settable_keys(); an unknown key is a parse error.
//
// Header keys configure the service/executor; `at <time> <verb>` lines build
// the virtual-time event script (non-decreasing times, validated drain
// pairing); `expect` lines are the episode's machine-checked verdicts. All
// parse errors are std::invalid_argument carrying the line number. The
// runner (scenario/scenario_runner.h) executes the episode deterministically
// and evaluates the verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "model/runtime_model.h"
#include "serve/fleet.h"
#include "serve/offload_service.h"
#include "sim/time.h"

namespace mco::scenario {

/// One traffic phase: from `start` until the next phase (or the horizon),
/// arrivals are generated with these E19-soak-generator parameters.
struct TrafficPhase {
  sim::Cycle start = 0;
  std::string profile = "steady";  ///< steady | burst | lull | mix
  sim::Cycles gap_min = 800;       ///< inter-arrival gap, uniform[min, max]
  sim::Cycles gap_max = 2400;
  std::uint64_t n_scale_min = 1;   ///< n = 256 * uniform[min, max]
  std::uint64_t n_scale_max = 16;
  double slack_min = 0.95;         ///< deadline = t̂(m_target, n) * slack
  double slack_max = 1.8;
  unsigned priority_min = 0;
  unsigned priority_max = 2;
  std::uint64_t unmeetable_one_in = 32;  ///< 0 = never
};

/// One scripted event. Traffic phases and fault activations also land in
/// ScenarioSpec::phases / ScenarioSpec::faults; the event list preserves the
/// full script order for reporting. kFail / kHeal / kPartition /
/// kDrainClusters / kUndrainClusters / kCorrupt are fleet-only fault-domain
/// verbs: a spec containing one runs through serve::FleetRouter even at
/// shards = 1 (so is kSet on an integrity.* key).
enum class ScenarioEventKind {
  kTraffic,
  kInject,
  kDrain,
  kUndrain,
  kRestart,
  kMark,
  kFail,
  kHeal,
  kPartition,
  kDrainClusters,
  kUndrainClusters,
  kCorrupt,
  kSet,
};

const char* to_string(ScenarioEventKind k);

struct ScenarioEvent {
  sim::Cycle at = 0;
  ScenarioEventKind kind = ScenarioEventKind::kMark;
  /// Profile / preset / mark name; the corruption mode of a `corrupt` verb
  /// (payload_flip, chunk_truncate, meta_corrupt, stale_read or mix); the
  /// dotted key of a `set` verb. Empty for plain operator verbs.
  std::string label;
  /// Target shard of an operator verb (`drain shard=2`); 0 when omitted.
  /// Only meaningful with a `shards` header > 1 — single-service episodes
  /// always act on shard 0.
  unsigned shard = 0;
  /// Victim clusters of a `drain clusters=0,1` / `undrain clusters=0,1`
  /// verb, or the single victim of a `corrupt cluster=<c>` (empty = any
  /// cluster); empty for every other kind.
  std::vector<unsigned> clusters;
  /// The rate of a `corrupt` verb / the value of a `set` verb; 0 otherwise.
  double value = 0.0;
};

/// One `expect` line: `metric op value`, optionally scoped to jobs arriving
/// at or after a named mark.
struct VerdictSpec {
  std::string metric;
  std::string op;  ///< == != <= >= < >
  double value = 0.0;
  std::string after;  ///< mark name; empty = whole episode
  std::string text;   ///< canonical rendering for reports
};

/// A parsed scenario, ready for scenario_runner::run_scenario.
struct ScenarioSpec {
  std::string name = "scenario";
  /// Fleet episodes: > 1 serves the trace through a serve::FleetRouter of
  /// this many shards (`clusters` becomes the per-shard fabric size) and
  /// operator verbs take an optional shard=<k> argument. 1 = the single
  /// OffloadService path, byte-identical to the pre-fleet runner.
  unsigned shards = 1;
  unsigned clusters = 8;
  std::uint64_t seed = 42;
  sim::Cycle horizon = 0;  ///< required: last generated arrival cycle
  std::size_t max_queue = 16;
  unsigned failure_threshold = 2;
  unsigned probation_probes = 1;
  sim::Cycles probe_backoff_cycles = 5'000;
  sim::Cycles restart_penalty_cycles = 20'000;
  sim::Cycles watchdog_wait_cycles = 2'000;
  unsigned max_retries = 1;
  /// `integrity = on`: per-chunk digest attestation on every executor's
  /// runtime. Off by default — attestation charges verify cycles, so the
  /// pre-integrity episodes stay byte-identical.
  bool integrity_checks = false;
  /// `audit = <f>`: fraction of clean batch-of-one completions the fleet
  /// dual-executes to catch checksum-blind (stale_read) escapes.
  double audit_fraction = 0.0;
  /// `batch = <n>`: same-kernel coalescing cap (1 disables batching).
  std::size_t max_batch = 4;
  /// `steal = head|slack`: cross-shard steal-victim policy (backlog head vs
  /// tightest slack).
  serve::StealPolicy steal_policy = serve::StealPolicy::kBacklogHead;

  std::vector<TrafficPhase> phases;
  std::vector<ScenarioEvent> events;
  fault::FaultSchedule faults;
  std::vector<std::pair<std::string, sim::Cycle>> marks;  ///< script order
  std::vector<VerdictSpec> verdicts;

  /// Cycle of a named mark; throws std::invalid_argument when unknown.
  sim::Cycle mark_cycle(const std::string& name) const;

  /// True when the script uses a fleet-only fault-domain verb (fail, heal,
  /// partition, drain/undrain clusters=, corrupt, set integrity.*): the
  /// runner then serves the episode through a FleetRouter even when
  /// shards == 1.
  bool needs_fleet() const;
};

/// One `set`-able dotted key: name, value kind ("count" | "time" |
/// "fraction") and which layer consumes it. The parser rejects any key not
/// in this table.
struct SettableKeyInfo {
  const char* name;
  const char* kind;
};

/// The whitelist of `set <dotted.key>=<value>` keys. docs/scenarios.md
/// documents the same names (keyword reference, kind "setting").
const std::vector<SettableKeyInfo>& scenario_settable_keys();

/// Parse the scenario dialect. Throws std::invalid_argument with the line
/// number on any malformed line (unknown verb/key/preset/metric, decreasing
/// timestamps, drain/undrain mis-pairing, missing horizon, ...).
ScenarioSpec load_scenario_text(const std::string& text);
/// File variant; throws std::runtime_error if the file cannot be opened.
ScenarioSpec load_scenario_file(const std::string& path);

/// Deterministic job stream for the episode: phase-directed E19 generator
/// over one sim::Rng(spec.seed), arrivals up to spec.horizon. `model` is the
/// admission model deadlines are drawn against.
std::vector<serve::ServeJob> scenario_trace(const ScenarioSpec& spec,
                                            const model::RuntimeModel& model);

/// Evaluate one comparison (the verdict ops; throws on an unknown op).
bool verdict_holds(const std::string& op, double actual, double expected);

/// Dialect keyword inventory: every header key, verb, traffic profile,
/// fault preset, event/traffic argument and verdict metric the parser
/// accepts. docs/scenarios.md documents the same names;
/// scripts/check_metrics_docs.py cross-checks the two bidirectionally.
struct KeywordInfo {
  const char* name;
  const char* kind;  ///< header | verb | profile | preset | arg | metric
};

const std::vector<KeywordInfo>& scenario_keyword_reference();

}  // namespace mco::scenario
