// End-to-end result attestation for the offload path.
//
// Crash/omission faults make an offload *late*; silent data corruption makes
// it *wrong*. This layer closes that gap with per-chunk digests: at marshal
// time the host computes an FNV-1a digest of the dispatch payload, each
// cluster (conceptually) extends it over the result chunk it writes back and
// echoes the digest in its completion metadata, and at the completion gather
// the host recomputes the digest from the gathered bytes and compares. A
// mismatch convicts the chunk — and hence the cluster that produced it —
// without re-executing anything.
//
// The verify pass is charged as a new Eq.-(1) phase (PhaseBreakdown::verify):
// integrity is not free, and bench_integrity (E24) reports exactly what it
// costs as a fraction of simulated cycles.
//
// What a digest can and cannot catch (see docs/robustness.md, "Silent data
// corruption"):
//   * payload word flips, truncated chunk writes, corrupted completion
//     metadata — all detected, because the echoed digest and the gathered
//     bytes disagree;
//   * stale-buffer reads — NOT detected: the cluster computed honestly over
//     wrong inputs, so its digest matches its (wrong) output. Catching those
//     requires ground truth or dual execution (the serve layer's audit
//     fraction, FleetConfig::integrity).
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/kernel.h"
#include "mem/address_map.h"
#include "mem/main_memory.h"
#include "noc/message.h"
#include "offload/offload_result.h"

namespace mco::fault {
class FaultInjector;
}

namespace mco::offload {

/// FNV-1a over a byte range, seeded with `basis` so digests chain
/// (payload digest → result-chunk digest).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t bytes,
                    std::uint64_t basis = 0xcbf29ce484222325ull);

/// FNV-1a over a payload's words (the marshal-time half of the chain).
std::uint64_t payload_digest(const noc::DispatchMessage& payload);

/// The HBM byte ranges cluster `idx` of `parts` writes for `args` — the
/// kernel's dma_out plan, which is exactly the surface a write-back
/// corruption can touch.
std::vector<kernels::DmaSeg> result_segments(const kernels::Kernel& kernel,
                                             const kernels::JobArgs& args, unsigned idx,
                                             unsigned parts);

/// Digest of cluster `idx`'s result chunk as currently in memory, chained
/// onto `basis` (normally the payload digest).
std::uint64_t chunk_digest(const mem::MainMemory& mem, const mem::AddressMap& map,
                           const kernels::Kernel& kernel, const kernels::JobArgs& args,
                           unsigned idx, unsigned parts, std::uint64_t basis);

// IntegrityReport — the outcome struct this layer fills — lives in
// offload/offload_result.h so results stay a light include.

/// Apply one cluster's injected corruption to memory and return the digest
/// the cluster *echoes* for its chunk (honest unless the metadata itself is
/// corrupted). `report` collects the oracle annotations. The walk order —
/// stale perturbation, honest digest, write-back perturbation, metadata
/// perturbation — encodes when each fault physically strikes relative to the
/// cluster's attestation.
std::uint64_t apply_chunk_corruption(mem::MainMemory& mem, const mem::AddressMap& map,
                                     fault::FaultInjector* injector,
                                     const kernels::Kernel& kernel,
                                     const kernels::JobArgs& args, unsigned idx,
                                     unsigned parts, std::uint64_t basis,
                                     IntegrityReport& report);

}  // namespace mco::offload
