// Result and per-phase breakdown of one offload.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace mco::offload {

/// Host-observed timestamps of one offload. All in absolute cycles.
struct OffloadTimestamps {
  sim::Cycle call = 0;           ///< runtime entry
  sim::Cycle marshal_done = 0;   ///< payload built
  sim::Cycle sync_ready = 0;     ///< sync unit armed / counter initialized
  sim::Cycle dispatch_done = 0;  ///< last dispatch store issued
  sim::Cycle completion = 0;     ///< completion observed (IRQ handler entry
                                 ///< scheduled / successful poll iteration end)
  sim::Cycle ret = 0;            ///< runtime returned to the application
};

/// Derived phase durations (host perspective).
struct PhaseBreakdown {
  sim::Cycles marshal = 0;
  sim::Cycles sync_setup = 0;
  sim::Cycles dispatch = 0;
  sim::Cycles wait = 0;      ///< dispatch done → completion observed
  sim::Cycles epilogue = 0;  ///< completion → return (handler tail, combine, exit)
};

struct OffloadResult {
  std::string kernel;
  std::uint64_t job_id = 0;
  std::uint64_t n = 0;
  unsigned num_clusters = 0;
  std::size_t payload_words = 0;
  bool used_multicast = false;
  bool used_hw_sync = false;

  OffloadTimestamps ts;

  /// Total offload latency as the application sees it.
  sim::Cycles total() const { return ts.ret - ts.call; }

  PhaseBreakdown phases() const {
    PhaseBreakdown p;
    p.marshal = ts.marshal_done - ts.call;
    p.sync_setup = ts.sync_ready - ts.marshal_done;
    p.dispatch = ts.dispatch_done - ts.sync_ready;
    p.wait = ts.completion - ts.dispatch_done;
    p.epilogue = ts.ret - ts.completion;
    return p;
  }
};

}  // namespace mco::offload
