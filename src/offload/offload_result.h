// Result and per-phase breakdown of one offload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mco::offload {

/// Host-observed timestamps of one offload. All in absolute cycles.
struct OffloadTimestamps {
  sim::Cycle call = 0;           ///< runtime entry
  sim::Cycle marshal_done = 0;   ///< payload built
  sim::Cycle sync_ready = 0;     ///< sync unit armed / counter initialized
  sim::Cycle dispatch_done = 0;  ///< last dispatch store issued
  sim::Cycle completion = 0;     ///< completion observed (IRQ handler entry
                                 ///< scheduled / successful poll iteration end)
  sim::Cycle verify_done = 0;    ///< per-chunk digest verify finished (0 when
                                 ///< the integrity layer is off)
  sim::Cycle ret = 0;            ///< runtime returned to the application
};

/// Derived phase durations (host perspective).
struct PhaseBreakdown {
  sim::Cycles marshal = 0;
  sim::Cycles sync_setup = 0;
  sim::Cycles dispatch = 0;
  sim::Cycles wait = 0;      ///< dispatch done → completion observed
  sim::Cycles verify = 0;    ///< completion → digests checked (0 when off)
  sim::Cycles epilogue = 0;  ///< verify done → return (handler tail, combine, exit)
};

/// Outcome of the completion-gather verify pass and of any silent-data
/// corruption that struck the offload (see offload/integrity.h). Default
/// state = checks off, nothing corrupted.
struct IntegrityReport {
  /// The digest verify pass ran (OffloadRuntimeConfig::integrity.enabled).
  bool checks_enabled = false;
  unsigned chunks_checked = 0;
  unsigned digest_mismatches = 0;
  /// Clusters whose echoed digest disagreed with the gathered bytes.
  std::vector<unsigned> corrupted_clusters;
  /// Ground-truth annotation, NOT visible to the protocol: clusters whose
  /// chunk was corrupted but whose digest verified (stale reads, or any
  /// corruption when checks are off). The escape accounting of E24 and the
  /// serve layer's audit machinery key off this oracle bit.
  std::vector<unsigned> silent_clusters;

  bool detected(unsigned cluster) const;
  bool silent(unsigned cluster) const;
  bool any_corruption() const {
    return !corrupted_clusters.empty() || !silent_clusters.empty();
  }
};

/// What the watchdog/retry/degraded-completion layer did during one offload.
/// All zero (and degraded == false) on a fault-free run.
struct FaultRecoveryStats {
  /// The offload completed without its full cluster set: at least one cluster
  /// was given up on and its chunk recomputed by survivors. The result is
  /// numerically complete, but the job ran below the requested parallelism.
  bool degraded = false;
  std::uint64_t watchdog_timeouts = 0;     ///< completion waits that expired
  std::uint64_t retries = 0;               ///< re-dispatches of stuck clusters
  std::uint64_t probes = 0;                ///< cluster status reads
  std::uint64_t credits_recovered = 0;     ///< completions found by probe after
                                           ///< a lost credit/AMO/IRQ
  std::uint64_t clusters_redistributed = 0;///< failed chunks recomputed
  std::vector<unsigned> failed_clusters;   ///< permanently failed cluster ids
  sim::Cycles recovery_cycles = 0;         ///< first watchdog expiry → completion
};

struct OffloadResult {
  std::string kernel;
  std::uint64_t job_id = 0;
  std::uint64_t n = 0;
  unsigned num_clusters = 0;
  std::size_t payload_words = 0;
  bool used_multicast = false;
  bool used_hw_sync = false;

  OffloadTimestamps ts;
  FaultRecoveryStats recovery;
  IntegrityReport integrity;

  /// Total offload latency as the application sees it.
  sim::Cycles total() const { return ts.ret - ts.call; }

  PhaseBreakdown phases() const {
    PhaseBreakdown p;
    p.marshal = ts.marshal_done - ts.call;
    p.sync_setup = ts.sync_ready - ts.marshal_done;
    p.dispatch = ts.dispatch_done - ts.sync_ready;
    p.wait = ts.completion - ts.dispatch_done;
    // verify_done == 0 means the integrity layer never ran: the verify
    // phase is empty and the epilogue starts at the completion stamp, so a
    // dormant config's breakdown is bit-identical to the pre-integrity one.
    const sim::Cycle gathered = ts.verify_done != 0 ? ts.verify_done : ts.completion;
    p.verify = gathered - ts.completion;
    p.epilogue = ts.ret - gathered;
    return p;
  }
};

}  // namespace mco::offload
