#include "offload/offload_runtime.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::offload {

OffloadRuntime::OffloadRuntime(sim::Simulator& sim, OffloadRuntimeConfig cfg,
                               host::HostCore& host, noc::Interconnect& noc,
                               sync::CreditCounterUnit& sync_unit,
                               sync::SharedCounter& shared_counter,
                               const kernels::KernelRegistry& registry,
                               mem::MainMemory& main_mem, const mem::AddressMap& map)
    : sim_(sim),
      cfg_(cfg),
      host_(host),
      noc_(noc),
      sync_unit_(sync_unit),
      shared_counter_(shared_counter),
      registry_(registry),
      main_mem_(main_mem),
      map_(map) {
  if (cfg_.use_multicast && !noc_.config().multicast_enabled)
    throw std::invalid_argument(
        "OffloadRuntime: use_multicast requires the interconnect multicast extension");
  if (cfg_.use_multicast && !host_.config().has_multicast_lsu)
    throw std::invalid_argument(
        "OffloadRuntime: use_multicast requires the host LSU multicast extension");
}

void OffloadRuntime::offload_async(const kernels::JobArgs& args, unsigned num_clusters,
                                   DoneCallback done) {
  if (busy_) throw std::logic_error("OffloadRuntime: offload already in flight");
  if (num_clusters == 0) throw std::invalid_argument("OffloadRuntime: zero clusters");
  if (num_clusters > noc_.num_clusters())
    throw std::invalid_argument(util::format(
        "OffloadRuntime: %u clusters requested but the fabric has %u", num_clusters,
        noc_.num_clusters()));

  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  kernel.validate(args);

  busy_ = true;
  kernel_ = &kernel;
  args_ = args;
  args_.job_id = next_job_id_++;
  done_ = std::move(done);

  noc::DispatchMessage payload =
      kernels::marshal_payload(args_, num_clusters, kernel.marshal_args(args_));

  result_ = OffloadResult{};
  result_.kernel = kernel.name();
  result_.job_id = args_.job_id;
  result_.n = args_.n;
  result_.num_clusters = num_clusters;
  result_.payload_words = payload.size_words();
  result_.used_multicast = cfg_.use_multicast;
  result_.used_hw_sync = cfg_.use_hw_sync;
  result_.ts.call = sim_.now();

  sim_.trace().record(sim_.now(), "runtime", "offload_start",
                      util::format("%s n=%llu M=%u", kernel.name().c_str(),
                                   static_cast<unsigned long long>(args_.n), num_clusters));

  const sim::Cycles marshal =
      cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * payload.size_words();
  host_.exec(marshal, [this, p = std::move(payload), num_clusters]() mutable {
    result_.ts.marshal_done = sim_.now();
    setup_sync(num_clusters);
    // setup_sync scheduled the sync stores; chain the dispatch after them.
    const sim::Cycles sync_cost = cfg_.use_hw_sync ? 2 * cfg_.sync_arm_store_cycles
                                                   : cfg_.counter_init_cycles;
    host_.exec(sync_cost, [this, p2 = std::move(p), num_clusters]() mutable {
      result_.ts.sync_ready = sim_.now();
      dispatch(std::move(p2), num_clusters, 0);
    });
  });
}

void OffloadRuntime::setup_sync(unsigned num_clusters) {
  // The state change lands when the host's stores complete; modeling it at
  // issue time is equivalent here because nothing can observe the window.
  if (cfg_.use_hw_sync) {
    sync_unit_.arm(num_clusters);
  } else {
    shared_counter_.store(0);
  }
}

void OffloadRuntime::dispatch(noc::DispatchMessage payload, unsigned num_clusters,
                              unsigned next) {
  const sim::Cycles per_target = host_.store_cost(payload.size_words());

  if (cfg_.use_multicast) {
    // One store sequence; the interconnect replicates it to all targets.
    host_.exec(per_target + host_.config().multicast_issue_cycles,
               [this, p = std::move(payload), num_clusters]() mutable {
                 std::vector<unsigned> targets(num_clusters);
                 for (unsigned i = 0; i < num_clusters; ++i) targets[i] = i;
                 noc_.multicast_dispatch(targets, std::move(p));
                 result_.ts.dispatch_done = sim_.now();
                 await_completion(num_clusters);
               });
    return;
  }

  // Baseline: one mailbox-store sequence per cluster, strictly sequential on
  // the host pipeline — the linear-in-M overhead of Fig. 1 (left).
  host_.exec(per_target, [this, p = std::move(payload), num_clusters, next]() mutable {
    noc_.unicast_dispatch(next, p);
    if (next + 1 < num_clusters) {
      dispatch(std::move(p), num_clusters, next + 1);
    } else {
      result_.ts.dispatch_done = sim_.now();
      await_completion(num_clusters);
    }
  });
}

void OffloadRuntime::await_completion(unsigned num_clusters) {
  if (cfg_.use_hw_sync) {
    host_.wait_for_irq([this, num_clusters] {
      result_.ts.completion = sim_.now();
      complete(num_clusters);
    });
  } else {
    host_.poll_until(
        [this, num_clusters] { return shared_counter_.load() >= num_clusters; },
        [this, num_clusters] {
          result_.ts.completion = sim_.now();
          complete(num_clusters);
        });
  }
}

void OffloadRuntime::complete(unsigned num_clusters) {
  const sim::Cycles epilogue =
      kernel_->host_epilogue_cycles(args_, num_clusters) + cfg_.return_cycles;
  host_.exec(epilogue, [this, num_clusters] {
    kernel_->host_epilogue(main_mem_, map_, args_, num_clusters);
    result_.ts.ret = sim_.now();
    busy_ = false;
    ++offloads_completed_;
    sim_.trace().record(sim_.now(), "runtime", "offload_done",
                        util::format("total=%llu",
                                     static_cast<unsigned long long>(result_.total())));
    if (done_) {
      auto cb = std::move(done_);
      done_ = nullptr;
      cb(result_);
    }
  });
}

void OffloadRuntime::execute_on_host_async(const kernels::JobArgs& args,
                                           std::function<void(HostRunResult)> done) {
  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  kernel.validate(args);
  HostRunResult result;
  result.kernel = kernel.name();
  result.n = args.n;
  result.start = sim_.now();
  const sim::Cycles cost = cfg_.host_call_cycles + kernel.host_execute_cycles(args) +
                           cfg_.host_return_cycles;
  host_.exec(cost, [this, &kernel, args, result, cb = std::move(done)]() mutable {
    kernel.host_execute(main_mem_, map_, args);
    result.end = sim_.now();
    if (cb) cb(result);
  });
}

HostRunResult OffloadRuntime::execute_on_host_blocking(const kernels::JobArgs& args) {
  std::optional<HostRunResult> out;
  execute_on_host_async(args, [&out](const HostRunResult& r) { out = r; });
  sim_.run();
  if (!out) throw std::runtime_error("OffloadRuntime: host execution did not complete");
  return *out;
}

// ---- back-to-back offload sequences -----------------------------------------

struct OffloadRuntime::SeqState {
  std::vector<kernels::JobArgs> jobs;
  unsigned num_clusters = 0;
  bool pipelined = false;
  SequenceResult result;
  std::function<void(SequenceResult)> done;
  bool next_marshalled = false;  ///< job k+1's payload already built
};

void OffloadRuntime::offload_sequence_async(std::vector<kernels::JobArgs> jobs,
                                            unsigned num_clusters, bool pipelined,
                                            std::function<void(SequenceResult)> done) {
  if (busy_) throw std::logic_error("OffloadRuntime: offload already in flight");
  if (jobs.empty()) throw std::invalid_argument("OffloadRuntime: empty job sequence");
  if (num_clusters == 0 || num_clusters > noc_.num_clusters())
    throw std::invalid_argument("OffloadRuntime: bad cluster count for sequence");
  for (auto& j : jobs) {
    registry_.by_id(j.kernel_id).validate(j);
    j.job_id = next_job_id_++;
  }

  busy_ = true;
  auto st = std::make_shared<SeqState>();
  st->jobs = std::move(jobs);
  st->num_clusters = num_clusters;
  st->pipelined = pipelined;
  st->result.pipelined = pipelined;
  st->result.start = sim_.now();
  st->done = std::move(done);

  // Marshal job 0 (never hidden), then enter the dispatch loop.
  const kernels::Kernel& k0 = registry_.by_id(st->jobs[0].kernel_id);
  const std::size_t words0 = kernels::kHeaderWords + k0.marshal_args(st->jobs[0]).size();
  host_.exec(cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * words0,
             [this, st] { seq_dispatch_job(st, 0); });
}

void OffloadRuntime::seq_dispatch_job(std::shared_ptr<SeqState> st, std::size_t k) {
  const kernels::JobArgs& args = st->jobs[k];
  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  noc::DispatchMessage payload =
      kernels::marshal_payload(args, st->num_clusters, kernel.marshal_args(args));

  // Sync setup for this job (the unit cannot be re-armed earlier: it is
  // busy with the previous job until its interrupt fires).
  const sim::Cycles sync_cost =
      cfg_.use_hw_sync ? 2 * cfg_.sync_arm_store_cycles : cfg_.counter_init_cycles;
  host_.exec(sync_cost, [this, st, k, p = std::move(payload)]() mutable {
    setup_sync(st->num_clusters);
    const sim::Cycles per_target = host_.store_cost(p.size_words());
    if (cfg_.use_multicast) {
      host_.exec(per_target + host_.config().multicast_issue_cycles,
                 [this, st, k, p2 = std::move(p)]() mutable {
                   std::vector<unsigned> targets(st->num_clusters);
                   for (unsigned i = 0; i < st->num_clusters; ++i) targets[i] = i;
                   noc_.multicast_dispatch(targets, std::move(p2));
                   seq_await_job(st, k);
                 });
      return;
    }
    // Sequential unicast dispatch.
    auto send = std::make_shared<std::function<void(unsigned)>>();
    *send = [this, st, k, p2 = std::move(p), send](unsigned next) mutable {
      host_.exec(host_.store_cost(p2.size_words()), [this, st, k, p2, send, next] {
        noc_.unicast_dispatch(next, p2);
        if (next + 1 < st->num_clusters) (*send)(next + 1);
        else {
          *send = nullptr;  // break the shared_ptr self-cycle
          seq_await_job(st, k);
        }
      });
    };
    (*send)(0);
  });
}

void OffloadRuntime::seq_await_job(std::shared_ptr<SeqState> st, std::size_t k) {
  const kernels::JobArgs& args = st->jobs[k];
  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  SequenceJobTrace trace;
  trace.kernel = kernel.name();
  trace.n = args.n;
  trace.job_id = args.job_id;
  trace.dispatched = sim_.now();
  st->result.jobs.push_back(trace);

  const auto wait_then_finish = [this, st, k] {
    const auto on_complete = [this, st, k] {
      const kernels::JobArgs& a = st->jobs[k];
      const kernels::Kernel& kern = registry_.by_id(a.kernel_id);
      const sim::Cycles epilogue =
          kern.host_epilogue_cycles(a, st->num_clusters) + cfg_.return_cycles;
      host_.exec(epilogue, [this, st, k] {
        const kernels::JobArgs& a2 = st->jobs[k];
        registry_.by_id(a2.kernel_id).host_epilogue(main_mem_, map_, a2, st->num_clusters);
        st->result.jobs[k].completed = sim_.now();
        if (k + 1 < st->jobs.size()) {
          if (st->pipelined && st->next_marshalled) {
            st->next_marshalled = false;
            seq_dispatch_job(st, k + 1);
          } else {
            const kernels::Kernel& kn = registry_.by_id(st->jobs[k + 1].kernel_id);
            const std::size_t words =
                kernels::kHeaderWords + kn.marshal_args(st->jobs[k + 1]).size();
            host_.exec(cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * words,
                       [this, st, k] { seq_dispatch_job(st, k + 1); });
          }
        } else {
          st->result.end = sim_.now();
          busy_ = false;
          offloads_completed_ += st->jobs.size();
          if (st->done) st->done(st->result);
        }
      });
    };
    if (cfg_.use_hw_sync) {
      host_.wait_for_irq(on_complete);
    } else {
      host_.poll_until(
          [this, st] { return shared_counter_.load() >= st->num_clusters; }, on_complete);
    }
  };

  if (st->pipelined && k + 1 < st->jobs.size()) {
    // Hide the next job's marshalling under this job's accelerator time.
    const kernels::Kernel& kn = registry_.by_id(st->jobs[k + 1].kernel_id);
    const std::size_t words = kernels::kHeaderWords + kn.marshal_args(st->jobs[k + 1]).size();
    host_.exec(cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * words,
               [st, wait_then_finish] {
                 st->next_marshalled = true;
                 wait_then_finish();
               });
  } else {
    wait_then_finish();
  }
}

SequenceResult OffloadRuntime::offload_sequence_blocking(std::vector<kernels::JobArgs> jobs,
                                                         unsigned num_clusters,
                                                         bool pipelined) {
  std::optional<SequenceResult> out;
  offload_sequence_async(std::move(jobs), num_clusters, pipelined,
                         [&out](const SequenceResult& r) { out = r; });
  sim_.run();
  if (!out) throw std::runtime_error("OffloadRuntime: sequence did not complete");
  return *out;
}

OffloadResult OffloadRuntime::offload_blocking(const kernels::JobArgs& args,
                                               unsigned num_clusters) {
  std::optional<OffloadResult> out;
  offload_async(args, num_clusters, [&out](const OffloadResult& r) { out = r; });
  // Step (rather than run_until) so the clock stops at the completion event
  // instead of jumping to the watchdog deadline on drain — durations derived
  // from now() (e.g. energy accounting) must reflect real activity only.
  const sim::Cycle deadline = sim_.now() + cfg_.watchdog_cycles;
  while (!out && !sim_.idle() && sim_.now() <= deadline) {
    sim_.step();
  }
  if (!out) {
    if (!sim_.idle()) {
      throw std::runtime_error(util::format(
          "OffloadRuntime: watchdog expired after %llu cycles (offload deadlocked?)",
          static_cast<unsigned long long>(cfg_.watchdog_cycles)));
    }
    throw std::runtime_error("OffloadRuntime: simulation drained before completion");
  }
  return *out;
}

}  // namespace mco::offload
