#include "offload/offload_runtime.h"

#include <stdexcept>

#include "offload/integrity.h"
#include "util/strings.h"

namespace mco::offload {

OffloadRuntime::OffloadRuntime(sim::Simulator& sim, OffloadRuntimeConfig cfg,
                               host::HostCore& host, noc::Interconnect& noc,
                               sync::CreditCounterUnit& sync_unit,
                               sync::SharedCounter& shared_counter,
                               const kernels::KernelRegistry& registry,
                               mem::MainMemory& main_mem, const mem::AddressMap& map)
    : sim_(sim),
      cfg_(cfg),
      host_(host),
      noc_(noc),
      sync_unit_(sync_unit),
      shared_counter_(shared_counter),
      registry_(registry),
      main_mem_(main_mem),
      map_(map) {
  if (cfg_.use_multicast && !noc_.config().multicast_enabled)
    throw std::invalid_argument(
        "OffloadRuntime: use_multicast requires the interconnect multicast extension");
  if (cfg_.use_multicast && !host_.config().has_multicast_lsu)
    throw std::invalid_argument(
        "OffloadRuntime: use_multicast requires the host LSU multicast extension");
  if (cfg_.recovery_enabled && cfg_.watchdog_wait_cycles == 0)
    throw std::invalid_argument("OffloadRuntime: zero watchdog_wait_cycles");
}

void OffloadRuntime::span_begin(const char* what, std::string_view detail) {
  sim_.trace().begin_span(sim_.now(), "runtime", what, detail);
}

void OffloadRuntime::span_end() {
  if (sim_.trace().armed()) sim_.trace().end_span(sim_.now(), "runtime");
}

void OffloadRuntime::record_offload_metrics() const {
  sim::StatsRegistry& st = sim_.stats();
  const PhaseBreakdown p = result_.phases();
  st.counter("runtime.phase.marshal_cycles").inc(p.marshal);
  st.counter("runtime.phase.sync_setup_cycles").inc(p.sync_setup);
  st.counter("runtime.phase.dispatch_cycles").inc(p.dispatch);
  st.counter("runtime.phase.wait_cycles").inc(p.wait);
  // Registered only when the integrity layer ran, so checks-off metric dumps
  // stay bit-identical to the seed.
  if (result_.integrity.checks_enabled)
    st.counter("runtime.phase.verify_cycles").inc(p.verify);
  st.counter("runtime.phase.epilogue_cycles").inc(p.epilogue);
  st.histogram("runtime.offload_total_cycles", 256.0, 64)
      .sample(static_cast<double>(result_.total()));
  const FaultRecoveryStats& r = result_.recovery;
  st.counter("runtime.recovery.watchdog_timeouts").inc(r.watchdog_timeouts);
  st.counter("runtime.recovery.retries").inc(r.retries);
  st.counter("runtime.recovery.probes").inc(r.probes);
  st.counter("runtime.recovery.credits_recovered").inc(r.credits_recovered);
  st.counter("runtime.recovery.clusters_redistributed").inc(r.clusters_redistributed);
  st.counter("runtime.recovery.recovery_cycles").inc(r.recovery_cycles);
  if (r.degraded) st.counter("runtime.recovery.degraded_completions").inc();
}

void OffloadRuntime::offload_async(const kernels::JobArgs& args, unsigned num_clusters,
                                   DoneCallback done) {
  if (busy_) throw std::logic_error("OffloadRuntime: offload already in flight");
  if (num_clusters == 0) throw std::invalid_argument("OffloadRuntime: zero clusters");
  if (num_clusters > noc_.num_clusters())
    throw std::invalid_argument(util::format(
        "OffloadRuntime: %u clusters requested but the fabric has %u", num_clusters,
        noc_.num_clusters()));

  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  kernel.validate(args);
  if (cfg_.recovery_enabled && (!probe_fn_ || !kill_fn_ || !poke_fn_))
    throw std::logic_error("OffloadRuntime: recovery enabled but cluster ports not wired");

  busy_ = true;
  kernel_ = &kernel;
  args_ = args;
  args_.job_id = next_job_id_++;
  done_ = std::move(done);

  noc::DispatchMessage payload =
      kernels::marshal_payload(args_, num_clusters, kernel.marshal_args(args_));

  if (cfg_.recovery_enabled) {
    rec_payload_ = payload;
    rec_attempt_ = 0;
    rec_done_.assign(num_clusters, false);
    rec_failed_.assign(num_clusters, false);
    rec_first_timeout_ = 0;
  }

  // The marshal-time half of the attestation chain. Computed only when
  // someone will consume it: the fault-free, checks-off path stays exactly
  // the seed path.
  if (cfg_.integrity.enabled || (injector_ && injector_->corruption_enabled()))
    payload_digest_ = offload::payload_digest(payload);

  result_ = OffloadResult{};
  result_.kernel = kernel.name();
  result_.job_id = args_.job_id;
  result_.n = args_.n;
  result_.num_clusters = num_clusters;
  result_.payload_words = payload.size_words();
  result_.used_multicast = cfg_.use_multicast;
  result_.used_hw_sync = cfg_.use_hw_sync;
  result_.ts.call = sim_.now();

  if (sim::TraceSink& tr = sim_.trace(); tr.armed())
    tr.record(sim_.now(), "runtime", "offload_start",
                      util::format("%s n=%llu M=%u", kernel.name().c_str(),
                                   static_cast<unsigned long long>(args_.n), num_clusters));
  if (sim_.trace().armed())
    span_begin("offload", util::format("%s n=%llu M=%u", kernel.name().c_str(),
                                       static_cast<unsigned long long>(args_.n), num_clusters));
  span_begin("marshal");

  const sim::Cycles marshal =
      cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * payload.size_words();
  host_.exec(marshal, [this, p = std::move(payload), num_clusters]() mutable {
    result_.ts.marshal_done = sim_.now();
    span_end();  // marshal
    span_begin("sync_setup");
    setup_sync(num_clusters);
    // setup_sync scheduled the sync stores; chain the dispatch after them.
    const sim::Cycles sync_cost = cfg_.use_hw_sync ? 2 * cfg_.sync_arm_store_cycles
                                                   : cfg_.counter_init_cycles;
    host_.exec(sync_cost, [this, p2 = std::move(p), num_clusters]() mutable {
      result_.ts.sync_ready = sim_.now();
      span_end();  // sync_setup
      span_begin("dispatch");
      dispatch(std::move(p2), num_clusters, 0);
    });
  });
}

void OffloadRuntime::setup_sync(unsigned num_clusters) {
  // The state change lands when the host's stores complete; modeling it at
  // issue time is equivalent here because nothing can observe the window.
  // begin_tracking piggybacks on the same stores (the bitmap clear is part of
  // the arm/init write) — no extra cycles.
  if (cfg_.use_hw_sync) {
    sync_unit_.begin_tracking(num_clusters);
    sync_unit_.arm(num_clusters);
  } else {
    shared_counter_.begin_tracking(num_clusters);
    shared_counter_.store(0);
  }
}

void OffloadRuntime::dispatch(noc::DispatchMessage payload, unsigned num_clusters,
                              unsigned next) {
  const sim::Cycles per_target = host_.store_cost(payload.size_words());

  if (cfg_.use_multicast) {
    // One store sequence; the interconnect replicates it to all targets.
    host_.exec(per_target + host_.config().multicast_issue_cycles,
               [this, p = std::move(payload), num_clusters]() mutable {
                 std::vector<unsigned> targets(num_clusters);
                 for (unsigned i = 0; i < num_clusters; ++i) targets[i] = i;
                 noc_.multicast_dispatch(targets, std::move(p));
                 result_.ts.dispatch_done = sim_.now();
                 await_completion(num_clusters);
               });
    return;
  }

  // Baseline: one mailbox-store sequence per cluster, strictly sequential on
  // the host pipeline — the linear-in-M overhead of Fig. 1 (left).
  host_.exec(per_target, [this, p = std::move(payload), num_clusters, next]() mutable {
    noc_.unicast_dispatch(next, p);
    if (next + 1 < num_clusters) {
      dispatch(std::move(p), num_clusters, next + 1);
    } else {
      result_.ts.dispatch_done = sim_.now();
      await_completion(num_clusters);
    }
  });
}

void OffloadRuntime::await_completion(unsigned num_clusters) {
  span_end();  // dispatch (ts.dispatch_done was just stamped)
  span_begin("wait");
  if (cfg_.recovery_enabled) {
    await_round(num_clusters);
    return;
  }
  if (cfg_.use_hw_sync) {
    host_.wait_for_irq([this, num_clusters] {
      result_.ts.completion = sim_.now();
      complete(num_clusters);
    });
  } else {
    host_.poll_until(
        [this, num_clusters] { return shared_counter_.load() >= num_clusters; },
        [this, num_clusters] {
          result_.ts.completion = sim_.now();
          complete(num_clusters);
        });
  }
}

// ---- recovery engine --------------------------------------------------------
//
// One completion wait becomes a sequence of bounded rounds. Each round waits
// (IRQ or poll) with a watchdog budget; on expiry the host reads the
// per-cluster completion bitmap, probes every missing cluster's status
// registers and classifies it:
//   * done     — it completed but the completion signal was lost; count it;
//   * running  — it is still executing (straggler); wait another round;
//   * stuck    — it is idle and never ran the job (hung wakeup / lost
//                dispatch); kill the stale dispatch and re-issue it, with
//                exponential backoff, up to max_retries rounds.
// A cluster still stuck after max_retries is declared failed: the host
// substitutes its team-barrier arrival (so survivors are not deadlocked) and,
// once everything else resolved, re-runs each failed cluster's chunk on a
// surviving cluster as a one-cluster sub-job. The offload then completes with
// recovery.degraded = true and a numerically complete result.

bool OffloadRuntime::participant_done(unsigned cluster) const {
  if (rec_done_[cluster]) return true;
  return cfg_.use_hw_sync ? sync_unit_.cluster_done(cluster)
                          : shared_counter_.cluster_done(cluster);
}

bool OffloadRuntime::all_participants_done(unsigned n) const {
  for (unsigned c = 0; c < n; ++c) {
    if (!rec_failed_[c] && !participant_done(c)) return false;
  }
  return true;
}

unsigned OffloadRuntime::pending_participants(unsigned n) const {
  unsigned pending = 0;
  for (unsigned c = 0; c < n; ++c) {
    if (!rec_failed_[c] && !participant_done(c)) ++pending;
  }
  return pending;
}

void OffloadRuntime::await_round(unsigned n) {
  if (sim_.trace().armed())
    span_begin("watchdog_wait", util::format("pending=%u", pending_participants(n)));
  if (cfg_.use_hw_sync) {
    host_.wait_for_irq_or(cfg_.watchdog_wait_cycles,
                          [this, n](bool timed_out) { on_wait(n, timed_out); });
  } else {
    host_.poll_until_or([this, n] { return all_participants_done(n); },
                        cfg_.watchdog_wait_cycles,
                        [this, n](bool timed_out) { on_wait(n, timed_out); });
  }
}

void OffloadRuntime::on_wait(unsigned n, bool timed_out) {
  span_end();  // watchdog_wait
  if (!timed_out) {
    if (all_participants_done(n)) {
      finish_or_redistribute(n);
      return;
    }
    // Premature completion IRQ (a duplicated credit inflated the count):
    // re-arm for what is actually still missing and keep waiting.
    rearm_and_await(n);
    return;
  }
  ++result_.recovery.watchdog_timeouts;
  if (rec_first_timeout_ == 0) rec_first_timeout_ = sim_.now();
  if (sim::TraceSink& tr = sim_.trace(); tr.armed())
    tr.record(sim_.now(), "runtime", "watchdog_timeout",
                      util::format("pending=%u", pending_participants(n)));
  auto pending = std::make_shared<std::vector<unsigned>>();
  for (unsigned c = 0; c < n; ++c) {
    if (!rec_failed_[c] && !participant_done(c)) pending->push_back(c);
  }
  if (sim_.trace().armed())
    span_begin("probe_round", util::format("pending=%zu", pending->size()));
  probe_next(n, pending, 0, std::make_shared<std::vector<unsigned>>(),
             std::make_shared<unsigned>(0));
}

void OffloadRuntime::probe_next(unsigned n, std::shared_ptr<std::vector<unsigned>> pending,
                                std::size_t i, std::shared_ptr<std::vector<unsigned>> stuck,
                                std::shared_ptr<unsigned> running) {
  if (i == pending->size()) {
    resolve_round(n, std::move(*stuck), *running);
    return;
  }
  const unsigned c = (*pending)[i];
  span_begin("probe", util::format("cluster=%u", c));
  host_.exec(cfg_.probe_cycles, [this, n, pending, i, stuck, running, c] {
    span_end();  // probe
    ++result_.recovery.probes;
    const ClusterProbe p = probe_fn_(c);
    if (!p.busy && p.last_job_id == args_.job_id) {
      // Finished the job but its credit/AMO/IRQ was lost in flight.
      rec_done_[c] = true;
      ++result_.recovery.credits_recovered;
      if (sim::TraceSink& tr = sim_.trace(); tr.armed())
        tr.record(sim_.now(), "runtime", "credit_recovered",
                          util::format("cluster=%u", c));
    } else if (p.busy) {
      ++*running;  // straggler: still executing, leave it alone
    } else {
      stuck->push_back(c);  // idle and never ran it: hung wakeup or lost dispatch
    }
    probe_next(n, pending, i + 1, stuck, running);
  });
}

void OffloadRuntime::resolve_round(unsigned n, std::vector<unsigned> stuck, unsigned running) {
  span_end();  // probe_round
  if (stuck.empty()) {
    if (running > 0) {
      // Only stragglers left: wait another round.
      rearm_and_await(n);
    } else {
      finish_or_redistribute(n);
    }
    return;
  }
  if (rec_attempt_ < cfg_.max_retries) {
    ++rec_attempt_;
    span_begin("retry", util::format("attempt=%u stuck=%zu", rec_attempt_, stuck.size()));
    retry_stuck(n, std::make_shared<std::vector<unsigned>>(std::move(stuck)), 0);
    return;
  }
  // Out of retries: give up on the stuck clusters. Substituting their
  // team-barrier arrival releases any survivors blocked at the job barrier
  // (a failed cluster never arrived, so the count stays consistent).
  for (const unsigned c : stuck) {
    rec_failed_[c] = true;
    result_.recovery.failed_clusters.push_back(c);
    if (sim::TraceSink& tr = sim_.trace(); tr.armed())
      tr.record(sim_.now(), "runtime", "cluster_failed",
                        util::format("cluster=%u", c));
  }
  auto dead = std::make_shared<std::vector<unsigned>>(std::move(stuck));
  auto kill_chain = std::make_shared<std::function<void(std::size_t)>>();
  *kill_chain = [this, n, dead, kill_chain](std::size_t i) {
    if (i == dead->size()) {
      // Copy the captures we still need: clearing *kill_chain destroys this
      // closure (it is the function currently executing).
      OffloadRuntime* self = this;
      const unsigned nn = n;
      *kill_chain = nullptr;
      if (self->pending_participants(nn) > 0) {
        self->rearm_and_await(nn);  // stragglers may still be running
      } else {
        self->finish_or_redistribute(nn);
      }
      return;
    }
    const unsigned c = (*dead)[i];
    host_.exec(cfg_.kill_store_cycles, [this, dead, kill_chain, i, c] {
      kill_fn_(c);
      poke_fn_(result_.num_clusters);
      (*kill_chain)(i + 1);
    });
  };
  (*kill_chain)(0);
}

void OffloadRuntime::retry_stuck(unsigned n, std::shared_ptr<std::vector<unsigned>> stuck,
                                 std::size_t i) {
  if (i == stuck->size()) {
    // Exponential backoff, then re-dispatch each stuck cluster and wait again.
    sim::Cycles backoff = cfg_.backoff_base_cycles;
    for (unsigned a = 1; a < rec_attempt_; ++a) backoff *= cfg_.backoff_multiplier;
    host_.exec(backoff, [this, n, stuck] {
      auto send = std::make_shared<std::function<void(std::size_t)>>();
      *send = [this, n, stuck, send](std::size_t k) {
        if (k == stuck->size()) {
          // Copy before clearing *send: that assignment destroys this
          // closure (the function currently executing) and its captures.
          OffloadRuntime* self = this;
          const unsigned nn = n;
          *send = nullptr;
          self->span_end();  // retry
          self->rearm_and_await(nn);
          return;
        }
        const unsigned c = (*stuck)[k];
        host_.exec(host_.store_cost(rec_payload_.size_words()), [this, stuck, send, k, c] {
          ++result_.recovery.retries;
          if (sim::TraceSink& tr = sim_.trace(); tr.armed())
            tr.record(sim_.now(), "runtime", "redispatch",
                              util::format("cluster=%u attempt=%u", c, rec_attempt_));
          noc_.unicast_dispatch(c, rec_payload_);
          (*send)(k + 1);
        });
      };
      (*send)(0);
    });
    return;
  }
  // Kill the stale dispatch first so the retry cannot double-execute (the
  // cluster is idle — a queued message would otherwise run once drained).
  const unsigned c = (*stuck)[i];
  host_.exec(cfg_.kill_store_cycles, [this, n, stuck, i, c] {
    kill_fn_(c);
    retry_stuck(n, stuck, i + 1);
  });
}

void OffloadRuntime::rearm_and_await(unsigned n) {
  if (!cfg_.use_hw_sync) {
    await_round(n);  // the poll predicate reads the bitmap directly
    return;
  }
  host_.exec(cfg_.sync_arm_store_cycles, [this, n] {
    const unsigned remaining = pending_participants(n);
    sync_unit_.reset();
    if (remaining > 0) sync_unit_.arm(remaining);
    await_round(n);
  });
}

void OffloadRuntime::finish_or_redistribute(unsigned n) {
  if (result_.recovery.failed_clusters.empty()) {
    finish_recovered(n);
    return;
  }
  result_.recovery.degraded = true;
  if (!kernel_->supports_subrange()) {
    throw std::runtime_error(util::format(
        "OffloadRuntime: cluster(s) failed and kernel '%s' cannot re-express its chunk as a "
        "sub-job; result would be incomplete",
        kernel_->name().c_str()));
  }
  redistribute_next(n, 0);
}

void OffloadRuntime::redistribute_next(unsigned n, std::size_t i) {
  if (i == result_.recovery.failed_clusters.size()) {
    finish_recovered(n);
    return;
  }
  const unsigned f = result_.recovery.failed_clusters[i];
  const kernels::ChunkRange chunk = kernels::split_chunk(args_.n, f, n);
  if (chunk.count == 0) {
    redistribute_next(n, i + 1);
    return;
  }
  auto survivors = std::make_shared<std::vector<unsigned>>();
  for (unsigned c = 0; c < n; ++c) {
    if (!rec_failed_[c]) survivors->push_back(c);
  }
  if (survivors->empty())
    throw std::runtime_error("OffloadRuntime: all clusters failed; nothing to redistribute to");
  span_begin("redistribute", util::format("failed_cluster=%u count=%llu", f,
                                          static_cast<unsigned long long>(chunk.count)));
  try_survivor(n, i, chunk, survivors, 0);
}

void OffloadRuntime::try_survivor(unsigned n, std::size_t i, kernels::ChunkRange chunk,
                                  std::shared_ptr<std::vector<unsigned>> survivors,
                                  std::size_t si) {
  if (si == survivors->size())
    throw std::runtime_error(
        "OffloadRuntime: no surviving cluster accepted the redistributed chunk");
  const unsigned s = (*survivors)[si];
  kernels::JobArgs sub = kernel_->subrange_args(args_, chunk.begin, chunk.count);
  // Fresh job id: the survivor already completed the main job, so probing
  // with the main id could not tell "finished the sub-job" from "never
  // received it" when the sub-dispatch itself is lost.
  sub.job_id = next_job_id_++;
  noc::DispatchMessage payload =
      kernels::marshal_payload(sub, 1, kernel_->marshal_args(sub), /*first_cluster=*/s);
  if (sim::TraceSink& tr = sim_.trace(); tr.armed())
    tr.record(sim_.now(), "runtime", "redistribute",
                      util::format("cluster=%u -> %u count=%llu", result_.recovery.failed_clusters[i],
                                   s, static_cast<unsigned long long>(chunk.count)));
  const sim::Cycles marshal =
      cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * payload.size_words();
  const std::uint64_t sub_id = sub.job_id;
  host_.exec(marshal,
             [this, n, i, chunk, survivors, si, s, sub_id, p = std::move(payload)]() mutable {
    const sim::Cycles sync_cost =
        cfg_.use_hw_sync ? 2 * cfg_.sync_arm_store_cycles : cfg_.counter_init_cycles;
    host_.exec(sync_cost,
               [this, n, i, chunk, survivors, si, s, sub_id, p2 = std::move(p)]() mutable {
      // Fresh tracking epoch for the sub-job: only cluster s's signal counts.
      if (cfg_.use_hw_sync) {
        sync_unit_.reset();
        sync_unit_.begin_tracking(n);
        sync_unit_.arm(1);
      } else {
        shared_counter_.begin_tracking(n);
        shared_counter_.store(0);
      }
      host_.exec(host_.store_cost(p2.size_words()),
                 [this, n, i, chunk, survivors, si, s, sub_id, p3 = std::move(p2)]() mutable {
                   noc_.unicast_dispatch(s, std::move(p3));
                   await_sub(n, i, chunk, survivors, si, s, sub_id);
                 });
    });
  });
}

void OffloadRuntime::await_sub(unsigned n, std::size_t i, kernels::ChunkRange chunk,
                               std::shared_ptr<std::vector<unsigned>> survivors, std::size_t si,
                               unsigned s, std::uint64_t sub_job_id) {
  const bool hw = cfg_.use_hw_sync;
  const auto sub_done = [this, s, hw] {
    return hw ? sync_unit_.cluster_done(s) : shared_counter_.cluster_done(s);
  };
  const auto on_sub = [this, n, i, chunk, survivors, si, s, sub_job_id,
                       sub_done](bool timed_out) {
    span_end();  // watchdog_wait
    if (sub_done()) {
      ++result_.recovery.clusters_redistributed;
      span_end();  // redistribute
      redistribute_next(n, i + 1);
      return;
    }
    if (!timed_out) {
      // Spurious wake without the bit set: keep waiting.
      await_sub(n, i, chunk, survivors, si, s, sub_job_id);
      return;
    }
    ++result_.recovery.watchdog_timeouts;
    span_begin("probe", util::format("cluster=%u", s));
    host_.exec(cfg_.probe_cycles, [this, n, i, chunk, survivors, si, s, sub_job_id, sub_done] {
      span_end();  // probe
      ++result_.recovery.probes;
      const ClusterProbe p = probe_fn_(s);
      if (!p.busy && p.last_job_id == sub_job_id) {
        // Sub-job done, completion signal lost.
        ++result_.recovery.credits_recovered;
        ++result_.recovery.clusters_redistributed;
        span_end();  // redistribute
        redistribute_next(n, i + 1);
      } else if (p.busy) {
        // Still computing the chunk.
        await_sub(n, i, chunk, survivors, si, s, sub_job_id);
      } else {
        // The survivor never took the sub-job: kill the stale dispatch and
        // try the next one.
        host_.exec(cfg_.kill_store_cycles, [this, n, i, chunk, survivors, si, s] {
          kill_fn_(s);
          try_survivor(n, i, chunk, survivors, si + 1);
        });
      }
    });
  };
  span_begin("watchdog_wait", util::format("sub_job cluster=%u", s));
  if (hw) {
    host_.wait_for_irq_or(cfg_.watchdog_wait_cycles, on_sub);
  } else {
    host_.poll_until_or(sub_done, cfg_.watchdog_wait_cycles, on_sub);
  }
}

void OffloadRuntime::finish_recovered(unsigned n) {
  if (cfg_.use_hw_sync) sync_unit_.reset();  // drop any half-armed recovery state
  if (rec_first_timeout_ != 0)
    result_.recovery.recovery_cycles = sim_.now() - rec_first_timeout_;
  result_.ts.completion = sim_.now();
  complete(n);
}

void OffloadRuntime::complete(unsigned num_clusters) {
  span_end();  // wait (ts.completion was just stamped)

  const bool corrupting = injector_ != nullptr && injector_->corruption_enabled();
  if (cfg_.integrity.enabled || corrupting) {
    result_.integrity.checks_enabled = cfg_.integrity.enabled;
    // A cluster the recovery layer gave up on never echoed a digest — its
    // chunk was recomputed by a survivor sub-job — so it is outside both the
    // corruption surface and the verify pass.
    const auto failed = [this](unsigned c) {
      return cfg_.recovery_enabled && rec_failed_[c];
    };
    // Physics first: injected write-back corruption lands now, whether or
    // not anyone checks. Zero cycles — it is a property of the bytes that
    // arrived, not an action the host takes.
    auto echoes = std::make_shared<std::vector<std::uint64_t>>(num_clusters, 0);
    std::uint64_t result_words = 0;
    for (unsigned c = 0; c < num_clusters; ++c) {
      if (failed(c)) continue;
      (*echoes)[c] = apply_chunk_corruption(main_mem_, map_, corrupting ? injector_ : nullptr,
                                            *kernel_, args_, c, num_clusters, payload_digest_,
                                            result_.integrity);
      for (const kernels::DmaSeg& seg : result_segments(*kernel_, args_, c, num_clusters))
        result_words += seg.bytes / 8;
    }
    if (cfg_.integrity.enabled) {
      span_begin("verify");
      const sim::Cycles cost =
          cfg_.integrity.verify_base_cycles +
          (result_words + cfg_.integrity.verify_words_per_cycle - 1) /
              cfg_.integrity.verify_words_per_cycle;
      host_.exec(cost, [this, num_clusters, echoes, failed] {
        for (unsigned c = 0; c < num_clusters; ++c) {
          if (failed(c)) continue;
          ++result_.integrity.chunks_checked;
          const std::uint64_t expected = chunk_digest(main_mem_, map_, *kernel_, args_, c,
                                                      num_clusters, payload_digest_);
          if (expected != (*echoes)[c]) {
            ++result_.integrity.digest_mismatches;
            result_.integrity.corrupted_clusters.push_back(c);
            if (sim::TraceSink& tr = sim_.trace(); tr.armed())
              tr.record(sim_.now(), "runtime", "digest_mismatch",
                        util::format("cluster=%u", c));
          }
        }
        result_.ts.verify_done = sim_.now();
        span_end();  // verify
        finish_offload(num_clusters);
      });
      return;
    }
  }
  finish_offload(num_clusters);
}

void OffloadRuntime::finish_offload(unsigned num_clusters) {
  span_begin("epilogue");
  const sim::Cycles epilogue =
      kernel_->host_epilogue_cycles(args_, num_clusters) + cfg_.return_cycles;
  host_.exec(epilogue, [this, num_clusters] {
    kernel_->host_epilogue(main_mem_, map_, args_, num_clusters);
    result_.ts.ret = sim_.now();
    span_end();  // epilogue
    span_end();  // offload
    busy_ = false;
    ++offloads_completed_;
    record_offload_metrics();
    if (sim::TraceSink& tr = sim_.trace(); tr.armed())
      tr.record(sim_.now(), "runtime", "offload_done",
                        util::format("total=%llu",
                                     static_cast<unsigned long long>(result_.total())));
    if (done_) {
      auto cb = std::move(done_);
      done_ = nullptr;
      cb(result_);
    }
  });
}

void OffloadRuntime::execute_on_host_async(const kernels::JobArgs& args,
                                           std::function<void(HostRunResult)> done) {
  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  kernel.validate(args);
  HostRunResult result;
  result.kernel = kernel.name();
  result.n = args.n;
  result.start = sim_.now();
  const sim::Cycles cost = cfg_.host_call_cycles + kernel.host_execute_cycles(args) +
                           cfg_.host_return_cycles;
  host_.exec(cost, [this, &kernel, args, result, cb = std::move(done)]() mutable {
    kernel.host_execute(main_mem_, map_, args);
    result.end = sim_.now();
    if (cb) cb(result);
  });
}

void OffloadRuntime::run_blocking(const std::function<bool()>& done) {
  // Step (rather than run/run_until) so the clock stops at the completion
  // event instead of jumping to the watchdog deadline on drain — durations
  // derived from now() (e.g. energy accounting) must reflect real activity
  // only. The hard ceiling turns any miswired or faulted-out completion path
  // into a diagnosable error instead of an infinite spin.
  const sim::Cycle deadline = sim_.now() + cfg_.watchdog_cycles;
  while (!done() && !sim_.idle() && sim_.now() <= deadline) {
    sim_.step();
  }
  if (!done()) {
    if (!sim_.idle()) {
      throw std::runtime_error(util::format(
          "OffloadRuntime: watchdog expired after %llu cycles (offload deadlocked?)",
          static_cast<unsigned long long>(cfg_.watchdog_cycles)));
    }
    throw std::runtime_error("OffloadRuntime: simulation drained before completion");
  }
}

HostRunResult OffloadRuntime::execute_on_host_blocking(const kernels::JobArgs& args) {
  std::optional<HostRunResult> out;
  execute_on_host_async(args, [&out](const HostRunResult& r) { out = r; });
  run_blocking([&out] { return out.has_value(); });
  return *out;
}

// ---- back-to-back offload sequences -----------------------------------------

sim::Cycles SequenceResult::completion_offset(std::size_t k) const {
  if (k >= jobs.size())
    throw std::out_of_range("SequenceResult: completion_offset index past the job train");
  return jobs[k].completed - start;
}

struct OffloadRuntime::SeqState {
  std::vector<kernels::JobArgs> jobs;
  unsigned num_clusters = 0;
  bool pipelined = false;
  SequenceResult result;
  std::function<void(SequenceResult)> done;
  bool next_marshalled = false;  ///< job k+1's payload already built
};

void OffloadRuntime::offload_sequence_async(std::vector<kernels::JobArgs> jobs,
                                            unsigned num_clusters, bool pipelined,
                                            std::function<void(SequenceResult)> done) {
  if (busy_) throw std::logic_error("OffloadRuntime: offload already in flight");
  if (jobs.empty()) throw std::invalid_argument("OffloadRuntime: empty job sequence");
  if (num_clusters == 0 || num_clusters > noc_.num_clusters())
    throw std::invalid_argument("OffloadRuntime: bad cluster count for sequence");
  for (auto& j : jobs) {
    registry_.by_id(j.kernel_id).validate(j);
    j.job_id = next_job_id_++;
  }

  busy_ = true;
  auto st = std::make_shared<SeqState>();
  st->jobs = std::move(jobs);
  st->num_clusters = num_clusters;
  st->pipelined = pipelined;
  st->result.pipelined = pipelined;
  st->result.start = sim_.now();
  st->done = std::move(done);

  // Marshal job 0 (never hidden), then enter the dispatch loop.
  const kernels::Kernel& k0 = registry_.by_id(st->jobs[0].kernel_id);
  const std::size_t words0 = kernels::kHeaderWords + k0.marshal_args(st->jobs[0]).size();
  host_.exec(cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * words0,
             [this, st] { seq_dispatch_job(st, 0); });
}

void OffloadRuntime::seq_dispatch_job(std::shared_ptr<SeqState> st, std::size_t k) {
  const kernels::JobArgs& args = st->jobs[k];
  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  noc::DispatchMessage payload =
      kernels::marshal_payload(args, st->num_clusters, kernel.marshal_args(args));

  // Sync setup for this job (the unit cannot be re-armed earlier: it is
  // busy with the previous job until its interrupt fires).
  const sim::Cycles sync_cost =
      cfg_.use_hw_sync ? 2 * cfg_.sync_arm_store_cycles : cfg_.counter_init_cycles;
  host_.exec(sync_cost, [this, st, k, p = std::move(payload)]() mutable {
    setup_sync(st->num_clusters);
    const sim::Cycles per_target = host_.store_cost(p.size_words());
    if (cfg_.use_multicast) {
      host_.exec(per_target + host_.config().multicast_issue_cycles,
                 [this, st, k, p2 = std::move(p)]() mutable {
                   std::vector<unsigned> targets(st->num_clusters);
                   for (unsigned i = 0; i < st->num_clusters; ++i) targets[i] = i;
                   noc_.multicast_dispatch(targets, std::move(p2));
                   seq_await_job(st, k);
                 });
      return;
    }
    // Sequential unicast dispatch.
    auto send = std::make_shared<std::function<void(unsigned)>>();
    *send = [this, st, k, p2 = std::move(p), send](unsigned next) mutable {
      host_.exec(host_.store_cost(p2.size_words()), [this, st, k, p2, send, next] {
        noc_.unicast_dispatch(next, p2);
        if (next + 1 < st->num_clusters) (*send)(next + 1);
        else {
          *send = nullptr;  // break the shared_ptr self-cycle
          seq_await_job(st, k);
        }
      });
    };
    (*send)(0);
  });
}

void OffloadRuntime::seq_gather_job(std::shared_ptr<SeqState> st, std::size_t k,
                                    std::function<void()> next) {
  const bool corrupting = injector_ != nullptr && injector_->corruption_enabled();
  if (!cfg_.integrity.enabled && !corrupting) {
    next();
    return;
  }
  const kernels::JobArgs& a = st->jobs[k];
  const kernels::Kernel& kern = registry_.by_id(a.kernel_id);
  IntegrityReport& rep = st->result.jobs[k].integrity;
  rep.checks_enabled = cfg_.integrity.enabled;
  // Re-marshalling is deterministic, so recomputing the payload digest here
  // equals the one the dispatch-time payload carried.
  const std::uint64_t basis = offload::payload_digest(
      kernels::marshal_payload(a, st->num_clusters, kern.marshal_args(a)));
  auto echoes = std::make_shared<std::vector<std::uint64_t>>(st->num_clusters, 0);
  std::uint64_t result_words = 0;
  for (unsigned c = 0; c < st->num_clusters; ++c) {
    (*echoes)[c] = apply_chunk_corruption(main_mem_, map_, corrupting ? injector_ : nullptr,
                                          kern, a, c, st->num_clusters, basis, rep);
    for (const kernels::DmaSeg& seg : result_segments(kern, a, c, st->num_clusters))
      result_words += seg.bytes / 8;
  }
  if (!cfg_.integrity.enabled) {
    next();
    return;
  }
  span_begin("verify");
  const sim::Cycles cost =
      cfg_.integrity.verify_base_cycles +
      (result_words + cfg_.integrity.verify_words_per_cycle - 1) /
          cfg_.integrity.verify_words_per_cycle;
  host_.exec(cost, [this, st, k, basis, echoes, next = std::move(next)] {
    const kernels::JobArgs& a2 = st->jobs[k];
    const kernels::Kernel& kern2 = registry_.by_id(a2.kernel_id);
    IntegrityReport& rep2 = st->result.jobs[k].integrity;
    for (unsigned c = 0; c < st->num_clusters; ++c) {
      ++rep2.chunks_checked;
      const std::uint64_t expected =
          chunk_digest(main_mem_, map_, kern2, a2, c, st->num_clusters, basis);
      if (expected != (*echoes)[c]) {
        ++rep2.digest_mismatches;
        rep2.corrupted_clusters.push_back(c);
        if (sim::TraceSink& tr = sim_.trace(); tr.armed())
          tr.record(sim_.now(), "runtime", "digest_mismatch", util::format("cluster=%u", c));
      }
    }
    span_end();  // verify
    next();
  });
}

void OffloadRuntime::seq_await_job(std::shared_ptr<SeqState> st, std::size_t k) {
  const kernels::JobArgs& args = st->jobs[k];
  const kernels::Kernel& kernel = registry_.by_id(args.kernel_id);
  SequenceJobTrace trace;
  trace.kernel = kernel.name();
  trace.n = args.n;
  trace.job_id = args.job_id;
  trace.dispatched = sim_.now();
  st->result.jobs.push_back(trace);

  const auto wait_then_finish = [this, st, k] {
    const auto on_complete = [this, st, k] {
      seq_gather_job(st, k, [this, st, k] {
      const kernels::JobArgs& a = st->jobs[k];
      const kernels::Kernel& kern = registry_.by_id(a.kernel_id);
      const sim::Cycles epilogue =
          kern.host_epilogue_cycles(a, st->num_clusters) + cfg_.return_cycles;
      host_.exec(epilogue, [this, st, k] {
        const kernels::JobArgs& a2 = st->jobs[k];
        registry_.by_id(a2.kernel_id).host_epilogue(main_mem_, map_, a2, st->num_clusters);
        st->result.jobs[k].completed = sim_.now();
        if (k + 1 < st->jobs.size()) {
          if (st->pipelined && st->next_marshalled) {
            st->next_marshalled = false;
            seq_dispatch_job(st, k + 1);
          } else {
            const kernels::Kernel& kn = registry_.by_id(st->jobs[k + 1].kernel_id);
            const std::size_t words =
                kernels::kHeaderWords + kn.marshal_args(st->jobs[k + 1]).size();
            host_.exec(cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * words,
                       [this, st, k] { seq_dispatch_job(st, k + 1); });
          }
        } else {
          st->result.end = sim_.now();
          busy_ = false;
          offloads_completed_ += st->jobs.size();
          if (st->done) st->done(st->result);
        }
      });
      });
    };
    if (cfg_.use_hw_sync) {
      host_.wait_for_irq(on_complete);
    } else {
      host_.poll_until(
          [this, st] { return shared_counter_.load() >= st->num_clusters; }, on_complete);
    }
  };

  if (st->pipelined && k + 1 < st->jobs.size()) {
    // Hide the next job's marshalling under this job's accelerator time.
    const kernels::Kernel& kn = registry_.by_id(st->jobs[k + 1].kernel_id);
    const std::size_t words = kernels::kHeaderWords + kn.marshal_args(st->jobs[k + 1]).size();
    host_.exec(cfg_.marshal_base_cycles + cfg_.marshal_per_word_cycles * words,
               [st, wait_then_finish] {
                 st->next_marshalled = true;
                 wait_then_finish();
               });
  } else {
    wait_then_finish();
  }
}

SequenceResult OffloadRuntime::offload_sequence_blocking(std::vector<kernels::JobArgs> jobs,
                                                         unsigned num_clusters,
                                                         bool pipelined) {
  std::optional<SequenceResult> out;
  offload_sequence_async(std::move(jobs), num_clusters, pipelined,
                         [&out](const SequenceResult& r) { out = r; });
  run_blocking([&out] { return out.has_value(); });
  return *out;
}

OffloadResult OffloadRuntime::offload_blocking(const kernels::JobArgs& args,
                                               unsigned num_clusters) {
  std::optional<OffloadResult> out;
  offload_async(args, num_clusters, [&out](const OffloadResult& r) { out = r; });
  run_blocking([&out] { return out.has_value(); });
  return *out;
}

}  // namespace mco::offload
