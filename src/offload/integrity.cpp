#include "offload/integrity.h"

#include <algorithm>

#include "fault/fault_injector.h"

namespace mco::offload {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
// Sign-bit flip: a decisive numeric perturbation that stays finite for both
// f64 chunks and packed-f32 chunks, so the ground-truth oracle sees a real
// error rather than a rounding-level wiggle.
constexpr std::uint64_t kFlipMask = 0x8000000000000000ull;
// XOR applied to an echoed digest by the metadata-corruption mode.
constexpr std::uint64_t kMetaMask = 0xDEADBEEFCAFEF00Dull;
}  // namespace

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t bytes, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t payload_digest(const noc::DispatchMessage& payload) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t w : payload.words) {
    for (unsigned b = 0; b < 8; ++b) {
      h ^= static_cast<std::uint8_t>(w >> (8 * b));
      h *= kFnvPrime;
    }
  }
  return h;
}

std::vector<kernels::DmaSeg> result_segments(const kernels::Kernel& kernel,
                                             const kernels::JobArgs& args, unsigned idx,
                                             unsigned parts) {
  std::vector<kernels::DmaSeg> out = kernel.plan_cluster(args, idx, parts).dma_out;
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const kernels::DmaSeg& s) { return s.bytes == 0; }),
            out.end());
  return out;
}

std::uint64_t chunk_digest(const mem::MainMemory& mem, const mem::AddressMap& map,
                           const kernels::Kernel& kernel, const kernels::JobArgs& args,
                           unsigned idx, unsigned parts, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const kernels::DmaSeg& seg : result_segments(kernel, args, idx, parts)) {
    h = fnv1a(mem.data(map.hbm_offset(seg.hbm), seg.bytes), seg.bytes, h);
  }
  return h;
}

bool IntegrityReport::detected(unsigned cluster) const {
  return std::find(corrupted_clusters.begin(), corrupted_clusters.end(), cluster) !=
         corrupted_clusters.end();
}

bool IntegrityReport::silent(unsigned cluster) const {
  return std::find(silent_clusters.begin(), silent_clusters.end(), cluster) !=
         silent_clusters.end();
}

namespace {

/// XOR word `word_idx` (counting u64 words across `segs` in order) with
/// kFlipMask, in place.
void flip_word(mem::MainMemory& mem, const mem::AddressMap& map,
               const std::vector<kernels::DmaSeg>& segs, std::uint64_t word_idx) {
  for (const kernels::DmaSeg& seg : segs) {
    const std::uint64_t words = seg.bytes / 8;
    if (word_idx < words) {
      const mem::Addr off = map.hbm_offset(seg.hbm) + word_idx * 8;
      mem.write_u64(off, mem.read_u64(off) ^ kFlipMask);
      return;
    }
    word_idx -= words;
  }
}

/// Zero the trailing quarter (at least one word) of the last segment — the
/// truncated-DMA-burst shape: the chunk's tail never landed.
void truncate_tail(mem::MainMemory& mem, const mem::AddressMap& map,
                   const std::vector<kernels::DmaSeg>& segs) {
  const kernels::DmaSeg& seg = segs.back();
  const std::uint64_t words = seg.bytes / 8;
  if (words == 0) return;
  const std::uint64_t lost = std::max<std::uint64_t>(1, words / 4);
  const mem::Addr off = map.hbm_offset(seg.hbm) + (words - lost) * 8;
  mem.fill(off, lost * 8, 0);
}

}  // namespace

std::uint64_t apply_chunk_corruption(mem::MainMemory& mem, const mem::AddressMap& map,
                                     fault::FaultInjector* injector,
                                     const kernels::Kernel& kernel,
                                     const kernels::JobArgs& args, unsigned idx,
                                     unsigned parts, std::uint64_t basis,
                                     IntegrityReport& report) {
  const auto honest = [&] { return chunk_digest(mem, map, kernel, args, idx, parts, basis); };
  if (injector == nullptr || !injector->corruption_enabled()) return honest();

  const std::vector<kernels::DmaSeg> segs = result_segments(kernel, args, idx, parts);
  std::uint64_t words = 0;
  for (const kernels::DmaSeg& seg : segs) words += seg.bytes / 8;
  // A chunk with no result words gives corruption nothing to strike; skip
  // the draw entirely so accounting only counts corruptions that landed.
  if (words == 0) return honest();

  using Mode = fault::FaultInjector::ChunkCorruption;
  const Mode mode = injector->on_chunk_result(idx);
  switch (mode) {
    case Mode::kNone:
      return honest();
    case Mode::kStaleRead: {
      // The cluster consumed a stale input: wrong bytes, honestly attested.
      flip_word(mem, map, segs, injector->corrupt_word_index(words));
      report.silent_clusters.push_back(idx);
      return honest();
    }
    case Mode::kPayloadFlip: {
      // Attested first, flipped on the write-back path afterwards.
      const std::uint64_t echo = honest();
      flip_word(mem, map, segs, injector->corrupt_word_index(words));
      if (!report.checks_enabled) report.silent_clusters.push_back(idx);
      return echo;
    }
    case Mode::kChunkTruncate: {
      const std::uint64_t echo = honest();
      truncate_tail(mem, map, segs);
      if (!report.checks_enabled) report.silent_clusters.push_back(idx);
      return echo;
    }
    case Mode::kMetaCorrupt: {
      // Bytes intact; the completion metadata carrying the digest is hit.
      if (!report.checks_enabled) {
        // Without checks nobody reads the metadata — the result is actually
        // correct, so this mode neither detects nor escapes.
        return honest();
      }
      return honest() ^ kMetaMask;
    }
  }
  return honest();
}

}  // namespace mco::offload
