// Host-side offload runtime.
//
// Implements both offload designs the paper compares:
//
//  * baseline  — sequential unicast dispatch (one mailbox-store sequence per
//    cluster → overhead linear in M) and software completion (clusters
//    atomically increment a shared-memory counter; the host busy-polls it);
//  * extended  — multicast dispatch (one store sequence, replicated by the
//    interconnect → constant overhead) and hardware completion (the credit
//    counter unit interrupts the host at the threshold).
//
// The two extensions toggle independently so ablations can attribute the
// speedup to each mechanism.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "host/host_core.h"
#include "kernels/registry.h"
#include "mem/main_memory.h"
#include "noc/interconnect.h"
#include "offload/offload_result.h"
#include "sync/credit_counter.h"
#include "sync/shared_counter.h"

namespace mco::offload {

struct OffloadRuntimeConfig {
  bool use_multicast = false;
  bool use_hw_sync = false;
  /// Runtime entry: call, argument checks, job bookkeeping.
  sim::Cycles marshal_base_cycles = 78;
  /// Building each payload word (load field, pack, register move).
  sim::Cycles marshal_per_word_cycles = 3;
  /// One store to a sync-unit register (threshold, control).
  sim::Cycles sync_arm_store_cycles = 3;
  /// Initializing the shared-memory counter (store + fence), baseline.
  sim::Cycles counter_init_cycles = 17;
  /// Runtime exit: result plumbing, returning to the caller.
  sim::Cycles return_cycles = 41;
  /// Call/return overhead of the host-fallback execution path (no offload
  /// machinery involved, just a library call).
  sim::Cycles host_call_cycles = 20;
  sim::Cycles host_return_cycles = 10;
  /// Watchdog for the blocking helpers: if an offload has not completed
  /// within this many simulated cycles, the run is aborted with a
  /// std::runtime_error instead of spinning forever (e.g. a miswired
  /// completion path under a polling loop).
  sim::Cycles watchdog_cycles = 100'000'000;
};

/// Per-job record within an offload sequence.
struct SequenceJobTrace {
  std::string kernel;
  std::uint64_t n = 0;
  std::uint64_t job_id = 0;
  sim::Cycle dispatched = 0;  ///< last dispatch store for this job issued
  sim::Cycle completed = 0;   ///< host returned from this job
};

/// Result of a train of back-to-back offloads.
struct SequenceResult {
  std::vector<SequenceJobTrace> jobs;
  sim::Cycle start = 0;
  sim::Cycle end = 0;
  bool pipelined = false;
  sim::Cycles total() const { return end - start; }
};

/// Result of executing a job on the host core itself (the no-offload
/// alternative the decision solver compares against).
struct HostRunResult {
  std::string kernel;
  std::uint64_t n = 0;
  sim::Cycle start = 0;
  sim::Cycle end = 0;
  sim::Cycles total() const { return end - start; }
};

class OffloadRuntime {
 public:
  using DoneCallback = std::function<void(const OffloadResult&)>;

  OffloadRuntime(sim::Simulator& sim, OffloadRuntimeConfig cfg, host::HostCore& host,
                 noc::Interconnect& noc, sync::CreditCounterUnit& sync_unit,
                 sync::SharedCounter& shared_counter, const kernels::KernelRegistry& registry,
                 mem::MainMemory& main_mem, const mem::AddressMap& map);

  const OffloadRuntimeConfig& config() const { return cfg_; }

  /// Launch an offload of `args` onto clusters [0, num_clusters). The
  /// callback fires when the runtime returns to the application. Throws on
  /// invalid arguments or if an offload is already in flight (the runtime is
  /// synchronous, like the paper's).
  void offload_async(const kernels::JobArgs& args, unsigned num_clusters, DoneCallback done);

  /// Convenience: launch and run the simulation until the offload returns.
  OffloadResult offload_blocking(const kernels::JobArgs& args, unsigned num_clusters);

  /// Execute the job on the host core instead of offloading: same arithmetic
  /// (Kernel::host_execute), timed with the kernel's scalar-host cost model.
  void execute_on_host_async(const kernels::JobArgs& args, std::function<void(HostRunResult)> done);
  HostRunResult execute_on_host_blocking(const kernels::JobArgs& args);

  /// Run a train of offloads back to back on the same cluster set. With
  /// `pipelined`, the host marshals job k+1 while the accelerator executes
  /// job k (software pipelining — the sync-unit arm and the dispatch itself
  /// still serialize on job k's completion), hiding the marshalling cost of
  /// every job but the first. Job order and results are preserved.
  void offload_sequence_async(std::vector<kernels::JobArgs> jobs, unsigned num_clusters,
                              bool pipelined, std::function<void(SequenceResult)> done);
  SequenceResult offload_sequence_blocking(std::vector<kernels::JobArgs> jobs,
                                           unsigned num_clusters, bool pipelined);

  bool busy() const { return busy_; }
  std::uint64_t offloads_completed() const { return offloads_completed_; }

 private:
  struct SeqState;
  void seq_dispatch_job(std::shared_ptr<SeqState> st, std::size_t k);
  void seq_await_job(std::shared_ptr<SeqState> st, std::size_t k);
  void setup_sync(unsigned num_clusters);
  void dispatch(noc::DispatchMessage payload, unsigned num_clusters, unsigned next);
  void await_completion(unsigned num_clusters);
  void complete(unsigned num_clusters);

  sim::Simulator& sim_;
  OffloadRuntimeConfig cfg_;
  host::HostCore& host_;
  noc::Interconnect& noc_;
  sync::CreditCounterUnit& sync_unit_;
  sync::SharedCounter& shared_counter_;
  const kernels::KernelRegistry& registry_;
  mem::MainMemory& main_mem_;
  const mem::AddressMap& map_;

  bool busy_ = false;
  kernels::JobArgs args_;
  const kernels::Kernel* kernel_ = nullptr;
  OffloadResult result_;
  DoneCallback done_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t offloads_completed_ = 0;
};

}  // namespace mco::offload
