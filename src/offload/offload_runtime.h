// Host-side offload runtime.
//
// Implements both offload designs the paper compares:
//
//  * baseline  — sequential unicast dispatch (one mailbox-store sequence per
//    cluster → overhead linear in M) and software completion (clusters
//    atomically increment a shared-memory counter; the host busy-polls it);
//  * extended  — multicast dispatch (one store sequence, replicated by the
//    interconnect → constant overhead) and hardware completion (the credit
//    counter unit interrupts the host at the threshold).
//
// The two extensions toggle independently so ablations can attribute the
// speedup to each mechanism.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_injector.h"
#include "host/host_core.h"
#include "kernels/registry.h"
#include "mem/main_memory.h"
#include "noc/interconnect.h"
#include "offload/offload_result.h"
#include "sync/credit_counter.h"
#include "sync/shared_counter.h"

namespace mco::offload {

struct OffloadRuntimeConfig {
  bool use_multicast = false;
  bool use_hw_sync = false;
  /// Runtime entry: call, argument checks, job bookkeeping.
  sim::Cycles marshal_base_cycles = 78;
  /// Building each payload word (load field, pack, register move).
  sim::Cycles marshal_per_word_cycles = 3;
  /// One store to a sync-unit register (threshold, control).
  sim::Cycles sync_arm_store_cycles = 3;
  /// Initializing the shared-memory counter (store + fence), baseline.
  sim::Cycles counter_init_cycles = 17;
  /// Runtime exit: result plumbing, returning to the caller.
  sim::Cycles return_cycles = 41;
  /// Call/return overhead of the host-fallback execution path (no offload
  /// machinery involved, just a library call).
  sim::Cycles host_call_cycles = 20;
  sim::Cycles host_return_cycles = 10;
  /// Watchdog for the blocking helpers: if an offload has not completed
  /// within this many simulated cycles, the run is aborted with a
  /// std::runtime_error instead of spinning forever (e.g. a miswired
  /// completion path under a polling loop).
  sim::Cycles watchdog_cycles = 100'000'000;

  // ---- fault recovery (watchdog / retry / degraded completion) -------------

  /// Arm the in-simulation recovery layer: completion waits get a watchdog,
  /// missing clusters are probed, stuck dispatches are retried with backoff,
  /// and permanently failed clusters have their chunk redistributed to the
  /// survivors (degraded completion). Off by default — the fault-free timing
  /// paths are then bit-identical to the seed runtime.
  bool recovery_enabled = false;
  /// Completion-wait budget per round before the watchdog fires.
  sim::Cycles watchdog_wait_cycles = 1'000'000;
  /// Re-dispatch attempts per stuck cluster before it is declared failed.
  unsigned max_retries = 3;
  /// Exponential backoff before re-dispatching: base * multiplier^(attempt-1).
  sim::Cycles backoff_base_cycles = 64;
  unsigned backoff_multiplier = 2;
  /// Uncached read of one cluster's status registers over the NoC.
  sim::Cycles probe_cycles = 36;
  /// Store to a cluster's mailbox-control register (kill a stale dispatch).
  sim::Cycles kill_store_cycles = 3;

  // ---- end-to-end integrity (per-chunk digest attestation) -----------------

  struct IntegrityConfig {
    /// Verify each cluster's echoed chunk digest at the completion gather.
    /// Off by default: the gather path is then bit-identical to the seed
    /// runtime (ts.verify_done stays 0 and no verify event is scheduled).
    bool enabled = false;
    /// Fixed cost of the verify pass (loop setup, metadata reads).
    sim::Cycles verify_base_cycles = 24;
    /// Result words the host checksum unit hashes-and-compares per cycle —
    /// a wide (1 KiB/cycle) streaming FNV engine, so attestation costs a
    /// few percent of a job, not a multiple of it. The charge is
    /// verify_base_cycles + ceil(result_words / verify_words_per_cycle).
    std::uint64_t verify_words_per_cycle = 128;
  };
  IntegrityConfig integrity;
};

/// Per-job record within an offload sequence.
struct SequenceJobTrace {
  std::string kernel;
  std::uint64_t n = 0;
  std::uint64_t job_id = 0;
  sim::Cycle dispatched = 0;  ///< last dispatch store for this job issued
  sim::Cycle completed = 0;   ///< host returned from this job
  IntegrityReport integrity;  ///< digest verify outcome for this job
};

/// Result of a train of back-to-back offloads.
struct SequenceResult {
  std::vector<SequenceJobTrace> jobs;
  sim::Cycle start = 0;
  sim::Cycle end = 0;
  bool pipelined = false;
  sim::Cycles total() const { return end - start; }
  /// Completion of job k as an offset from the sequence start — the per-job
  /// durations a serving layer fans batched completions out with. Offsets
  /// are non-decreasing in job order (jobs retire in order even when
  /// pipelined). Throws std::out_of_range on a bad index.
  sim::Cycles completion_offset(std::size_t k) const;
};

/// Result of executing a job on the host core itself (the no-offload
/// alternative the decision solver compares against).
struct HostRunResult {
  std::string kernel;
  std::uint64_t n = 0;
  sim::Cycle start = 0;
  sim::Cycle end = 0;
  sim::Cycles total() const { return end - start; }
};

class OffloadRuntime {
 public:
  using DoneCallback = std::function<void(const OffloadResult&)>;

  /// Snapshot of one cluster's status registers, as read by a recovery probe.
  struct ClusterProbe {
    bool busy = false;          ///< currently executing a job
    bool has_message = false;   ///< a dispatch is queued but unconsumed
    std::uint64_t last_job_id = 0;  ///< most recently completed job
  };
  using ProbeFn = std::function<ClusterProbe(unsigned cluster)>;
  using KillFn = std::function<void(unsigned cluster)>;
  /// Substitute arrival for a permanently failed cluster so the surviving
  /// team members' barrier completes (`expected` = the job's cluster count).
  using BarrierPokeFn = std::function<void(unsigned expected)>;

  OffloadRuntime(sim::Simulator& sim, OffloadRuntimeConfig cfg, host::HostCore& host,
                 noc::Interconnect& noc, sync::CreditCounterUnit& sync_unit,
                 sync::SharedCounter& shared_counter, const kernels::KernelRegistry& registry,
                 mem::MainMemory& main_mem, const mem::AddressMap& map);

  const OffloadRuntimeConfig& config() const { return cfg_; }

  /// Wire the recovery layer's cluster access (required when
  /// recovery_enabled; the Soc does this).
  void set_cluster_probe(ProbeFn f) { probe_fn_ = std::move(f); }
  void set_cluster_kill(KillFn f) { kill_fn_ = std::move(f); }
  void set_barrier_poke(BarrierPokeFn f) { poke_fn_ = std::move(f); }

  /// Wire the fault injector consulted for silent-data-corruption at the
  /// completion gather (the Soc does this when any fault is configured).
  /// Null = write-back path is corruption-free.
  void set_fault_injector(fault::FaultInjector* injector) { injector_ = injector; }

  /// Launch an offload of `args` onto clusters [0, num_clusters). The
  /// callback fires when the runtime returns to the application. Throws on
  /// invalid arguments or if an offload is already in flight (the runtime is
  /// synchronous, like the paper's).
  void offload_async(const kernels::JobArgs& args, unsigned num_clusters, DoneCallback done);

  /// Convenience: launch and run the simulation until the offload returns.
  OffloadResult offload_blocking(const kernels::JobArgs& args, unsigned num_clusters);

  /// Execute the job on the host core instead of offloading: same arithmetic
  /// (Kernel::host_execute), timed with the kernel's scalar-host cost model.
  void execute_on_host_async(const kernels::JobArgs& args, std::function<void(HostRunResult)> done);
  HostRunResult execute_on_host_blocking(const kernels::JobArgs& args);

  /// Run a train of offloads back to back on the same cluster set. With
  /// `pipelined`, the host marshals job k+1 while the accelerator executes
  /// job k (software pipelining — the sync-unit arm and the dispatch itself
  /// still serialize on job k's completion), hiding the marshalling cost of
  /// every job but the first. Job order and results are preserved.
  void offload_sequence_async(std::vector<kernels::JobArgs> jobs, unsigned num_clusters,
                              bool pipelined, std::function<void(SequenceResult)> done);
  SequenceResult offload_sequence_blocking(std::vector<kernels::JobArgs> jobs,
                                           unsigned num_clusters, bool pipelined);

  bool busy() const { return busy_; }
  std::uint64_t offloads_completed() const { return offloads_completed_; }

 private:
  struct SeqState;
  void seq_dispatch_job(std::shared_ptr<SeqState> st, std::size_t k);
  void seq_await_job(std::shared_ptr<SeqState> st, std::size_t k);
  /// Completion gather for sequence job k (corruption + digest verify),
  /// then `next` (the job's epilogue).
  void seq_gather_job(std::shared_ptr<SeqState> st, std::size_t k, std::function<void()> next);
  void setup_sync(unsigned num_clusters);
  void dispatch(noc::DispatchMessage payload, unsigned num_clusters, unsigned next);
  void await_completion(unsigned num_clusters);
  void complete(unsigned num_clusters);
  /// Epilogue + retirement (the tail of complete(), after any verify pass).
  void finish_offload(unsigned num_clusters);
  /// Step the simulation until `done()` or the blocking watchdog expires.
  void run_blocking(const std::function<bool()>& done);

  // ---- recovery engine -------------------------------------------------------
  bool participant_done(unsigned cluster) const;
  bool all_participants_done(unsigned n) const;
  unsigned pending_participants(unsigned n) const;
  void await_round(unsigned n);
  void on_wait(unsigned n, bool timed_out);
  void probe_next(unsigned n, std::shared_ptr<std::vector<unsigned>> pending, std::size_t i,
                  std::shared_ptr<std::vector<unsigned>> stuck,
                  std::shared_ptr<unsigned> running);
  void resolve_round(unsigned n, std::vector<unsigned> stuck, unsigned running);
  void retry_stuck(unsigned n, std::shared_ptr<std::vector<unsigned>> stuck, std::size_t i);
  void rearm_and_await(unsigned n);
  void finish_or_redistribute(unsigned n);
  void redistribute_next(unsigned n, std::size_t i);
  void try_survivor(unsigned n, std::size_t i, kernels::ChunkRange chunk,
                    std::shared_ptr<std::vector<unsigned>> survivors, std::size_t si);
  void await_sub(unsigned n, std::size_t i, kernels::ChunkRange chunk,
                 std::shared_ptr<std::vector<unsigned>> survivors, std::size_t si, unsigned s,
                 std::uint64_t sub_job_id);
  void finish_recovered(unsigned n);

  sim::Simulator& sim_;
  OffloadRuntimeConfig cfg_;
  host::HostCore& host_;
  noc::Interconnect& noc_;
  sync::CreditCounterUnit& sync_unit_;
  sync::SharedCounter& shared_counter_;
  const kernels::KernelRegistry& registry_;
  mem::MainMemory& main_mem_;
  const mem::AddressMap& map_;

  bool busy_ = false;
  kernels::JobArgs args_;
  const kernels::Kernel* kernel_ = nullptr;
  OffloadResult result_;
  DoneCallback done_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t offloads_completed_ = 0;

  // ---- observability ---------------------------------------------------------
  /// Open a span on the "runtime" trace track (no-op when tracing is off).
  void span_begin(const char* what, std::string_view detail = {});
  void span_end();
  /// Accumulate the completed offload's phase durations, recovery counters
  /// and total-latency histogram sample into the StatsRegistry. Pure
  /// bookkeeping: never schedules events, so it cannot shift a cycle.
  void record_offload_metrics() const;

  // Integrity wiring + the marshal-time half of the digest chain.
  fault::FaultInjector* injector_ = nullptr;
  std::uint64_t payload_digest_ = 0;

  // Recovery wiring + in-flight recovery state.
  ProbeFn probe_fn_;
  KillFn kill_fn_;
  BarrierPokeFn poke_fn_;
  noc::DispatchMessage rec_payload_;   ///< primary payload, kept for re-dispatch
  unsigned rec_attempt_ = 0;           ///< retry rounds used so far
  std::vector<bool> rec_done_;         ///< probe-confirmed done (signal lost)
  std::vector<bool> rec_failed_;       ///< permanently failed participants
  sim::Cycle rec_first_timeout_ = 0;
};

}  // namespace mco::offload
