#include "fault/fault_injector.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::fault {

bool FaultConfig::any_enabled() const {
  return dispatch_drop_prob > 0.0 || dispatch_delay_prob > 0.0 || credit_drop_prob > 0.0 ||
         credit_duplicate_prob > 0.0 || irq_swallow_prob > 0.0 || cluster_hang_prob > 0.0 ||
         cluster_straggle_prob > 0.0 || dma_stall_prob > 0.0;
}

bool FaultConfig::corruption_enabled() const {
  return payload_flip_prob > 0.0 || chunk_truncate_prob > 0.0 || meta_corrupt_prob > 0.0 ||
         stale_read_prob > 0.0;
}

std::vector<NamedScenario> scenario_catalog(std::uint64_t seed) {
  // One scenario per injection point, at probabilities high enough to fire a
  // handful of times per offload but low enough that recovery converges fast
  // (the harness runs hundreds of these). Delay magnitudes stay below typical
  // watchdog windows so delayed actions land, not time out, except in the
  // chaos mix where both outcomes occur.
  std::vector<NamedScenario> out;
  auto add = [&](const char* name, auto fill) {
    FaultConfig cfg;
    cfg.seed = seed;
    fill(cfg);
    out.push_back(NamedScenario{name, cfg});
  };
  add("dispatch_drop", [](FaultConfig& c) { c.dispatch_drop_prob = 0.25; });
  add("dispatch_delay", [](FaultConfig& c) {
    c.dispatch_delay_prob = 0.5;
    c.dispatch_delay_cycles = 200;
  });
  add("credit_drop", [](FaultConfig& c) { c.credit_drop_prob = 0.25; });
  add("credit_duplicate", [](FaultConfig& c) { c.credit_duplicate_prob = 0.5; });
  add("irq_swallow", [](FaultConfig& c) { c.irq_swallow_prob = 0.5; });
  add("cluster_hang", [](FaultConfig& c) { c.cluster_hang_prob = 0.2; });
  add("cluster_straggle", [](FaultConfig& c) {
    c.cluster_straggle_prob = 0.5;
    c.straggle_cycles = 500;
  });
  add("dma_stall", [](FaultConfig& c) {
    c.dma_stall_prob = 0.5;
    c.dma_stall_cycles = 300;
  });
  add("chaos", [](FaultConfig& c) {
    c.dispatch_drop_prob = 0.1;
    c.dispatch_delay_prob = 0.1;
    c.dispatch_delay_cycles = 150;
    c.credit_drop_prob = 0.1;
    c.credit_duplicate_prob = 0.1;
    c.irq_swallow_prob = 0.1;
    c.cluster_straggle_prob = 0.1;
    c.straggle_cycles = 400;
    c.dma_stall_prob = 0.1;
    c.dma_stall_cycles = 200;
  });
  return out;
}

FaultConfig fault_preset(const std::string& name, std::uint64_t seed) {
  if (name == "none") {
    FaultConfig cfg;
    cfg.seed = seed;
    return cfg;
  }
  if (name == "sick_cluster") {
    // Mirrors the E19 soak scenario: one physical cluster wedges on most of
    // its doorbells, so first-fit keeps blaming the same low logical IDs and
    // the circuit breaker trips, probes and re-admits.
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.target_cluster = 0;
    cfg.cluster_hang_prob = 0.9;
    return cfg;
  }
  for (const NamedScenario& sc : scenario_catalog(seed)) {
    if (sc.name == name) return sc.cfg;
  }
  std::string known;
  for (const std::string& n : preset_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument(
      util::format("fault_preset: unknown preset '%s' (expected one of: %s)", name.c_str(),
                   known.c_str()));
}

std::vector<std::string> preset_names() {
  std::vector<std::string> out{"none", "sick_cluster"};
  for (const NamedScenario& sc : scenario_catalog()) out.push_back(sc.name);
  return out;
}

void FaultSchedule::add(sim::Cycle at, FaultConfig cfg, std::string preset) {
  if (!steps_.empty() && at < steps_.back().at) {
    throw std::invalid_argument(
        util::format("FaultSchedule: step at cycle %llu precedes previous step at %llu",
                     static_cast<unsigned long long>(at),
                     static_cast<unsigned long long>(steps_.back().at)));
  }
  steps_.push_back(Step{at, std::move(preset), cfg});
}

const FaultConfig& FaultSchedule::active_at(sim::Cycle t) const {
  const FaultConfig* live = &default_;
  for (const Step& s : steps_) {
    if (s.at > t) break;
    live = &s.cfg;
  }
  return *live;
}

std::uint64_t FaultCounters::total() const {
  return dispatches_dropped + dispatches_delayed + credits_dropped + credits_duplicated +
         irqs_swallowed + cluster_hangs + cluster_straggles + dma_stalls + payload_flips +
         chunk_truncations + meta_corruptions + stale_reads;
}

namespace {
void check_prob(const char* name, double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument(
        util::format("FaultConfig: %s = %g outside [0, 1]", name, p));
}
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, std::string name, FaultConfig cfg,
                             Component* parent)
    : Component(sim, std::move(name), parent),
      cfg_(cfg),
      enabled_(cfg.any_enabled()),
      corruption_enabled_(cfg.corruption_enabled()),
      rng_(cfg.seed) {
  check_prob("dispatch_drop_prob", cfg_.dispatch_drop_prob);
  check_prob("dispatch_delay_prob", cfg_.dispatch_delay_prob);
  check_prob("credit_drop_prob", cfg_.credit_drop_prob);
  check_prob("credit_duplicate_prob", cfg_.credit_duplicate_prob);
  check_prob("irq_swallow_prob", cfg_.irq_swallow_prob);
  check_prob("cluster_hang_prob", cfg_.cluster_hang_prob);
  check_prob("cluster_straggle_prob", cfg_.cluster_straggle_prob);
  check_prob("dma_stall_prob", cfg_.dma_stall_prob);
  check_prob("payload_flip_prob", cfg_.payload_flip_prob);
  check_prob("chunk_truncate_prob", cfg_.chunk_truncate_prob);
  check_prob("meta_corrupt_prob", cfg_.meta_corrupt_prob);
  check_prob("stale_read_prob", cfg_.stale_read_prob);
}

void FaultInjector::bump(const char* stat) {
  // Live registry counter alongside the member counter: the metrics export
  // sees injected events even before a Soc-level publish pass runs. Faults
  // are rare, so the by-name lookup is off the per-event hot path.
  sim().stats().counter(name() + "." + stat).inc();
}

bool FaultInjector::targets(unsigned cluster) const {
  return cfg_.target_cluster < 0 ||
         static_cast<std::int64_t>(cluster) == cfg_.target_cluster;
}

bool FaultInjector::roll(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng_.next_double() < p;
}

FaultInjector::DispatchFault FaultInjector::on_dispatch(unsigned cluster) {
  DispatchFault f;
  if (!enabled_ || !targets(cluster)) return f;
  if (roll(cfg_.dispatch_drop_prob)) {
    f.drop = true;
    ++counters_.dispatches_dropped;
    bump("dispatches_dropped");
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "dispatch_drop", util::format("cluster=%u", cluster));
    return f;
  }
  if (roll(cfg_.dispatch_delay_prob)) {
    f.extra_delay = cfg_.dispatch_delay_cycles;
    ++counters_.dispatches_delayed;
    bump("dispatches_delayed");
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "dispatch_delay", util::format("cluster=%u", cluster));
  }
  return f;
}

FaultInjector::CreditFault FaultInjector::on_credit(unsigned cluster) {
  if (!enabled_ || !targets(cluster)) return CreditFault::kNone;
  if (roll(cfg_.credit_drop_prob)) {
    ++counters_.credits_dropped;
    bump("credits_dropped");
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "credit_drop", util::format("cluster=%u", cluster));
    return CreditFault::kDrop;
  }
  if (roll(cfg_.credit_duplicate_prob)) {
    ++counters_.credits_duplicated;
    bump("credits_duplicated");
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "credit_dup", util::format("cluster=%u", cluster));
    return CreditFault::kDuplicate;
  }
  return CreditFault::kNone;
}

bool FaultInjector::on_irq() {
  if (!enabled_) return false;
  if (roll(cfg_.irq_swallow_prob)) {
    ++counters_.irqs_swallowed;
    bump("irqs_swallowed");
    sim().trace().record(now(), path(), "irq_swallow");
    return true;
  }
  return false;
}

FaultInjector::WakeupFault FaultInjector::on_wakeup(unsigned cluster) {
  WakeupFault f;
  if (!enabled_ || !targets(cluster)) return f;
  if (roll(cfg_.cluster_hang_prob)) {
    f.hang = true;
    ++counters_.cluster_hangs;
    bump("cluster_hangs");
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "cluster_hang", util::format("cluster=%u", cluster));
    return f;
  }
  if (roll(cfg_.cluster_straggle_prob)) {
    f.extra_delay = cfg_.straggle_cycles;
    ++counters_.cluster_straggles;
    bump("cluster_straggles");
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "cluster_straggle",
                         util::format("cluster=%u", cluster));
  }
  return f;
}

FaultInjector::ChunkCorruption FaultInjector::on_chunk_result(unsigned cluster) {
  if (!corruption_enabled_ || !targets(cluster)) return ChunkCorruption::kNone;
  struct Mode {
    double FaultConfig::* prob;
    ChunkCorruption kind;
    std::uint64_t FaultCounters::* count;
    const char* stat;
    const char* what;
  };
  static constexpr Mode kModes[] = {
      {&FaultConfig::payload_flip_prob, ChunkCorruption::kPayloadFlip,
       &FaultCounters::payload_flips, "payload_flips", "sdc_payload_flip"},
      {&FaultConfig::chunk_truncate_prob, ChunkCorruption::kChunkTruncate,
       &FaultCounters::chunk_truncations, "chunk_truncations", "sdc_chunk_truncate"},
      {&FaultConfig::meta_corrupt_prob, ChunkCorruption::kMetaCorrupt,
       &FaultCounters::meta_corruptions, "meta_corruptions", "sdc_meta_corrupt"},
      {&FaultConfig::stale_read_prob, ChunkCorruption::kStaleRead,
       &FaultCounters::stale_reads, "stale_reads", "sdc_stale_read"},
  };
  for (const Mode& m : kModes) {
    if (!roll(cfg_.*m.prob)) continue;
    ++(counters_.*m.count);
    bump(m.stat);
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), m.what, util::format("cluster=%u", cluster));
    return m.kind;
  }
  return ChunkCorruption::kNone;
}

std::uint64_t FaultInjector::corrupt_word_index(std::uint64_t words) {
  if (words == 0) return 0;
  return rng_.next_below(words);
}

sim::Cycles FaultInjector::on_dma_setup(unsigned cluster) {
  if (!enabled_ || !targets(cluster)) return 0;
  if (roll(cfg_.dma_stall_prob)) {
    ++counters_.dma_stalls;
    bump("dma_stalls");
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "dma_stall", util::format("cluster=%u", cluster));
    return cfg_.dma_stall_cycles;
  }
  return 0;
}

}  // namespace mco::fault
