// Deterministic fault injection for the offload path.
//
// The paper's offload protocol assumes every architectural action succeeds:
// every mailbox store arrives, every cluster signals completion, every credit
// write and IRQ is delivered. The FaultInjector makes those assumptions
// falsifiable: components consult it at the protocol's vulnerable points
// (dispatch delivery, completion signalling, interrupt delivery, cluster
// wakeup, DMA setup) and it decides — from a seeded xoshiro stream, so runs
// are bit-reproducible — whether the action is dropped, delayed or
// duplicated. Recovery latency then becomes a measurable quantity instead of
// a hang (see OffloadRuntimeConfig's recovery knobs and bench_fault_sweep).
//
// Determinism contract: the simulator's event order is deterministic, every
// injection point draws in that order, and a draw happens only when the
// corresponding probability is non-zero and the cluster matches the victim
// filter. Same seed + same FaultConfig ⇒ identical fault pattern ⇒ identical
// cycle counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/component.h"
#include "sim/rng.h"

namespace mco::fault {

/// Per-fault-point probabilities and magnitudes. Defaults are all-zero: a
/// default FaultConfig injects nothing and perturbs nothing.
struct FaultConfig {
  /// Seed of the injector's private xoshiro stream.
  std::uint64_t seed = 0x5EEDull;
  /// Restrict cluster-addressed fault points to this victim cluster;
  /// -1 = any cluster may be hit. (IRQ swallowing is host-global and
  /// ignores the filter.)
  std::int64_t target_cluster = -1;

  /// A mailbox dispatch store silently never reaches the cluster.
  double dispatch_drop_prob = 0.0;
  /// A dispatch store is delayed by dispatch_delay_cycles in the fabric.
  double dispatch_delay_prob = 0.0;
  sim::Cycles dispatch_delay_cycles = 200;

  /// A completion signal (credit write / completion AMO) is lost in flight.
  double credit_drop_prob = 0.0;
  /// A completion signal is applied twice (replayed store).
  double credit_duplicate_prob = 0.0;

  /// The sync unit's IRQ is asserted but the host never sees it.
  double irq_swallow_prob = 0.0;

  /// A cluster never reacts to its doorbell (wedged runtime / power gate).
  double cluster_hang_prob = 0.0;
  /// A cluster reacts straggle_cycles late (cold icache, clock throttling).
  double cluster_straggle_prob = 0.0;
  sim::Cycles straggle_cycles = 5000;

  /// A DMA transfer's setup stalls for dma_stall_cycles.
  double dma_stall_prob = 0.0;
  sim::Cycles dma_stall_cycles = 500;

  // ---- silent data corruption (consumed at the completion gather) ----------
  // Unlike the crash/omission faults above, these complete the offload with
  // *wrong bytes*: the runtime's integrity layer (OffloadRuntimeConfig::
  // integrity) is what turns them into detections instead of silent escapes.

  /// One word of a cluster's result chunk is flipped after the cluster
  /// attested it (DMA bit flip on the write-back path) — digest-detectable.
  double payload_flip_prob = 0.0;
  /// The tail of a cluster's result chunk never lands (truncated DMA burst);
  /// stale zeros remain — digest-detectable.
  double chunk_truncate_prob = 0.0;
  /// The chunk bytes are intact but the completion metadata (the echoed
  /// digest) is corrupted in flight — digest-detectable (conservatively).
  double meta_corrupt_prob = 0.0;
  /// The cluster computed from a stale input buffer: the result is wrong but
  /// self-consistent, so its digest verifies. Only ground truth (or a dual
  /// execution audit) can catch it — the checksum-blind escape mode.
  double stale_read_prob = 0.0;

  /// True when any crash/omission-shaped probability is non-zero — the SoC
  /// only wires those injection points (and enables runtime recovery) in
  /// that case, so an all-zero config is guaranteed not to shift a single
  /// cycle. Corruption probabilities are deliberately excluded: they never
  /// delay or drop an action, so they must not arm the recovery engine.
  bool any_enabled() const;
  /// True when any silent-data-corruption probability is non-zero.
  bool corruption_enabled() const;
};

/// A named FaultConfig, for harnesses that iterate "the usual suspects".
struct NamedScenario {
  std::string name;
  FaultConfig cfg;
};

/// Canonical fault scenarios exercising each injection point in isolation
/// plus a combined chaos mix — the robustness harness (bench_schedule_stress,
/// test_check) sweeps this catalog so every protocol vulnerability gets
/// schedule-exploration coverage. All scenarios share `seed` so a caller can
/// re-seed the whole catalog at once.
std::vector<NamedScenario> scenario_catalog(std::uint64_t seed = 0x5EEDull);

/// Look up a FaultConfig by preset name: "none" (all-zero), any
/// scenario_catalog name, or "sick_cluster" (cluster 0 hangs on 90% of its
/// doorbells — the E19 circuit-breaker scenario). Throws
/// std::invalid_argument on an unknown name; preset_names() lists them.
FaultConfig fault_preset(const std::string& name, std::uint64_t seed = 0x5EEDull);
std::vector<std::string> preset_names();

/// A time-ordered fault activation schedule: which FaultConfig is live at
/// each virtual cycle of an episode. Steps are piecewise-constant — step k's
/// config applies from its activation cycle until the next step (before the
/// first step, the fault-free default applies). The chaos-scenario engine
/// builds one from `at T inject <preset>` lines.
class FaultSchedule {
 public:
  struct Step {
    sim::Cycle at = 0;
    std::string preset;  ///< label for reports (may be empty)
    FaultConfig cfg;
  };

  /// Append a step. Activation cycles must be non-decreasing; throws
  /// std::invalid_argument otherwise.
  void add(sim::Cycle at, FaultConfig cfg, std::string preset = "");

  const std::vector<Step>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// The config live at cycle `t` (fault-free default before the first step).
  const FaultConfig& active_at(sim::Cycle t) const;

 private:
  FaultConfig default_;
  std::vector<Step> steps_;
};

/// What the injector did, by fault point.
struct FaultCounters {
  std::uint64_t dispatches_dropped = 0;
  std::uint64_t dispatches_delayed = 0;
  std::uint64_t credits_dropped = 0;
  std::uint64_t credits_duplicated = 0;
  std::uint64_t irqs_swallowed = 0;
  std::uint64_t cluster_hangs = 0;
  std::uint64_t cluster_straggles = 0;
  std::uint64_t dma_stalls = 0;
  std::uint64_t payload_flips = 0;
  std::uint64_t chunk_truncations = 0;
  std::uint64_t meta_corruptions = 0;
  std::uint64_t stale_reads = 0;

  std::uint64_t total() const;
};

/// Seed-driven fault oracle. Components hold a nullable pointer to it and
/// consult it inline at each vulnerable action; a null pointer (or a config
/// with every probability zero) means the fault-free behaviour, untouched.
class FaultInjector : public sim::Component {
 public:
  FaultInjector(sim::Simulator& sim, std::string name, FaultConfig cfg,
                Component* parent = nullptr);

  const FaultConfig& config() const { return cfg_; }
  const FaultCounters& counters() const { return counters_; }
  bool enabled() const { return enabled_; }
  bool corruption_enabled() const { return corruption_enabled_; }

  /// Interconnect: fate of one dispatch delivery towards `cluster`.
  struct DispatchFault {
    bool drop = false;
    sim::Cycles extra_delay = 0;
  };
  DispatchFault on_dispatch(unsigned cluster);

  /// Sync units: fate of one completion signal from `cluster`.
  enum class CreditFault { kNone, kDrop, kDuplicate };
  CreditFault on_credit(unsigned cluster);

  /// Interrupt controller: true = swallow this raise.
  bool on_irq();

  /// Cluster doorbell: hang (never start) or straggle (start late).
  struct WakeupFault {
    bool hang = false;
    sim::Cycles extra_delay = 0;
  };
  WakeupFault on_wakeup(unsigned cluster);

  /// DMA engine: extra setup stall cycles for one transfer of `cluster`.
  sim::Cycles on_dma_setup(unsigned cluster);

  /// Completion gather: fate of one cluster's result chunk. Modes are
  /// mutually exclusive per chunk and rolled in declaration order. Draws
  /// happen only for non-zero corruption probabilities, so timing-fault-only
  /// configs keep their exact randomness stream.
  enum class ChunkCorruption { kNone, kPayloadFlip, kChunkTruncate, kMetaCorrupt, kStaleRead };
  ChunkCorruption on_chunk_result(unsigned cluster);

  /// Deterministic victim-word index for a corruption within a chunk of
  /// `words` payload words (words == 0 returns 0 without drawing).
  std::uint64_t corrupt_word_index(std::uint64_t words);

 private:
  /// Mirror a member-counter increment into the live StatsRegistry
  /// ("fault.<stat>"), so metrics exports carry injected-event counts.
  void bump(const char* stat);
  bool targets(unsigned cluster) const;
  /// One Bernoulli draw. Consumes randomness only for p > 0, so adding a
  /// fault point never perturbs the stream of configs that don't use it.
  bool roll(double p);

  FaultConfig cfg_;
  bool enabled_;
  bool corruption_enabled_;
  sim::Rng rng_;
  FaultCounters counters_;
};

}  // namespace mco::fault
