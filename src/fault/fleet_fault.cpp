#include "fault/fleet_fault.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "util/strings.h"

namespace mco::fault {

const char* to_string(FleetFaultKind k) {
  switch (k) {
    case FleetFaultKind::kShardCrash: return "crash";
    case FleetFaultKind::kRouterPartition: return "partition";
    case FleetFaultKind::kHeal: return "heal";
  }
  return "?";
}

FleetFaultPlan::FleetFaultPlan(unsigned num_shards) : num_shards_(num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("FleetFaultPlan: num_shards must be >= 1");
  }
  down_.assign(num_shards, false);
}

void FleetFaultPlan::add(sim::Cycle at, FleetFaultKind kind, unsigned shard) {
  if (shard >= num_shards_) {
    throw std::invalid_argument(util::format(
        "FleetFaultPlan: shard %u out of range (fleet has %u)", shard,
        num_shards_));
  }
  if (!events_.empty() && at < last_at_) {
    throw std::invalid_argument(util::format(
        "FleetFaultPlan: event times must be non-decreasing (%llu after %llu)",
        static_cast<unsigned long long>(at),
        static_cast<unsigned long long>(last_at_)));
  }
  if (kind == FleetFaultKind::kHeal) {
    if (!down_[shard]) {
      throw std::invalid_argument(util::format(
          "FleetFaultPlan: heal of shard %u, which is not down", shard));
    }
    down_[shard] = false;
  } else {
    if (down_[shard]) {
      throw std::invalid_argument(util::format(
          "FleetFaultPlan: %s of shard %u, which is already down",
          to_string(kind), shard));
    }
    down_[shard] = true;
  }
  last_at_ = at;
  events_.push_back({at, kind, shard});
}

void FleetFaultPlan::add_crash(sim::Cycle at, unsigned shard) {
  add(at, FleetFaultKind::kShardCrash, shard);
}

void FleetFaultPlan::add_partition(sim::Cycle at, unsigned shard) {
  add(at, FleetFaultKind::kRouterPartition, shard);
}

void FleetFaultPlan::add_heal(sim::Cycle at, unsigned shard) {
  add(at, FleetFaultKind::kHeal, shard);
}

bool FleetFaultPlan::down_at_end(unsigned shard) const {
  if (shard >= num_shards_) {
    throw std::invalid_argument(util::format(
        "FleetFaultPlan: shard %u out of range (fleet has %u)", shard,
        num_shards_));
  }
  return down_[shard];
}

FleetFaultPlan random_fleet_fault_plan(const FleetFaultPlanConfig& cfg) {
  if (cfg.num_shards == 0) {
    throw std::invalid_argument("random_fleet_fault_plan: num_shards must be >= 1");
  }
  if (cfg.arcs + 1 > cfg.num_shards) {
    throw std::invalid_argument(util::format(
        "random_fleet_fault_plan: %u arcs need at least %u shards so one "
        "always stays up (fleet has %u)",
        cfg.arcs, cfg.arcs + 1, cfg.num_shards));
  }
  if (cfg.min_heal_delay > cfg.max_heal_delay) {
    throw std::invalid_argument(
        "random_fleet_fault_plan: min_heal_delay > max_heal_delay");
  }
  sim::Rng rng(cfg.seed);
  // Victim shards are distinct, so at most `arcs` shards are ever down at
  // once and the arcs+1 <= num_shards check keeps a survivor.
  std::vector<unsigned> pool(cfg.num_shards);
  for (unsigned s = 0; s < cfg.num_shards; ++s) pool[s] = s;
  std::vector<FleetFaultEvent> events;
  const sim::Cycle lo = cfg.horizon / 8;
  const sim::Cycle hi = cfg.horizon / 2;
  for (unsigned a = 0; a < cfg.arcs; ++a) {
    const std::size_t pick = rng.next_below(pool.size());
    const unsigned shard = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    const sim::Cycle start = lo + rng.next_below(hi - lo + 1);
    const bool partition = rng.next_double() < cfg.partition_prob;
    const sim::Cycles delay =
        cfg.min_heal_delay +
        rng.next_below(cfg.max_heal_delay - cfg.min_heal_delay + 1);
    events.push_back({start,
                      partition ? FleetFaultKind::kRouterPartition
                                : FleetFaultKind::kShardCrash,
                      shard});
    events.push_back({start + delay, FleetFaultKind::kHeal, shard});
  }
  std::sort(events.begin(), events.end(),
            [](const FleetFaultEvent& a, const FleetFaultEvent& b) {
              return std::tie(a.at, a.shard, a.kind) <
                     std::tie(b.at, b.shard, b.kind);
            });
  FleetFaultPlan plan(cfg.num_shards);
  for (const FleetFaultEvent& ev : events) {
    switch (ev.kind) {
      case FleetFaultKind::kShardCrash: plan.add_crash(ev.at, ev.shard); break;
      case FleetFaultKind::kRouterPartition:
        plan.add_partition(ev.at, ev.shard);
        break;
      case FleetFaultKind::kHeal: plan.add_heal(ev.at, ev.shard); break;
    }
  }
  return plan;
}

}  // namespace mco::fault
