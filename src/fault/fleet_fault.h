// Fleet-level fault domains: shard crash, shard-router partition, heal.
//
// The per-SoC FaultInjector (fault_injector.h) perturbs the offload protocol
// *inside* one fabric. A serving fleet has a coarser failure granularity: a
// whole shard can crash-stop (power loss, kernel panic — every in-flight
// offload on it is gone), or the router's link to a shard can partition (the
// shard keeps executing, but its completions are invisible until the link
// heals). Both are modelled as timed, seeded, deterministic *plans*: a
// FleetFaultPlan is an ordered list of crash/partition/heal events that the
// fleet router (serve/fleet.h) arms as operator events before a run, the
// same way the chaos-scenario engine arms drain/restart scripts.
//
// Determinism contract: a plan is data, not a stream — the same plan applied
// to the same job trace yields bit-identical outcomes at any host
// parallelism. random_fleet_fault_plan() draws a plan from a seeded xoshiro
// stream once, up front, so "a random storm" is reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace mco::fault {

/// What happens to a shard at one plan step.
enum class FleetFaultKind {
  kShardCrash,       ///< crash-stop: shard dies, in-flight work is lost
  kRouterPartition,  ///< router link cut: shard runs on, completions invisible
  kHeal,             ///< the shard (crashed or partitioned) comes back
};

const char* to_string(FleetFaultKind k);

/// One timed fault-domain event.
struct FleetFaultEvent {
  sim::Cycle at = 0;
  FleetFaultKind kind = FleetFaultKind::kShardCrash;
  unsigned shard = 0;
};

/// A validated, time-ordered list of shard crash/partition/heal events.
///
/// Pairing rules are enforced at add() time so a plan can never script an
/// impossible sequence: crash/partition only hit an up shard, heal only a
/// down one. Times must be non-decreasing. Violations throw
/// std::invalid_argument.
class FleetFaultPlan {
 public:
  explicit FleetFaultPlan(unsigned num_shards);

  void add_crash(sim::Cycle at, unsigned shard);
  void add_partition(sim::Cycle at, unsigned shard);
  void add_heal(sim::Cycle at, unsigned shard);

  unsigned num_shards() const { return num_shards_; }
  const std::vector<FleetFaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// True when `shard` is down (crashed or partitioned) after the whole
  /// plan has played out — callers that need a clean end state can assert
  /// !down_at_end() for every shard.
  bool down_at_end(unsigned shard) const;

 private:
  void add(sim::Cycle at, FleetFaultKind kind, unsigned shard);

  unsigned num_shards_;
  std::vector<FleetFaultEvent> events_;
  std::vector<bool> down_;  ///< running pairing state, per shard
  sim::Cycle last_at_ = 0;
};

/// Knobs for the seeded plan generator.
struct FleetFaultPlanConfig {
  std::uint64_t seed = 0x5EEDull;
  unsigned num_shards = 4;
  /// Fault arcs to draw. Each arc picks a victim shard, a kind (crash or
  /// partition), a start cycle and a heal delay; arcs never overlap on the
  /// same shard and at least one shard always stays up.
  unsigned arcs = 2;
  /// Arcs start uniformly inside [horizon/8, horizon/2].
  sim::Cycle horizon = 1'000'000;
  /// Heal delay drawn uniformly from [min_heal_delay, max_heal_delay].
  sim::Cycles min_heal_delay = 50'000;
  sim::Cycles max_heal_delay = 200'000;
  /// Probability that an arc is a router partition instead of a crash.
  double partition_prob = 0.25;
};

/// Draw a deterministic crash/partition/heal storm from `cfg.seed`. Every
/// arc pairs its fault with a heal, so the plan ends with every shard up.
/// Throws std::invalid_argument on unsatisfiable configs (no shards, more
/// arcs than shards - 1, inverted delay bounds).
FleetFaultPlan random_fleet_fault_plan(const FleetFaultPlanConfig& cfg);

}  // namespace mco::fault
