// Cluster DMA engine: block transfers between HBM and the cluster's TCDM.
//
// The 9th core of each Manticore/Snitch cluster drives a DMA engine; here the
// engine is a component that (a) asks the shared HbmController for the
// transfer's beats (timing) and (b) copies the bytes between MainMemory and
// Tcdm when the last beat completes (function). Per-transfer setup models the
// DMA-core configuration instructions.
#pragma once

#include <cstdint>
#include <functional>

#include "mem/address_map.h"
#include "mem/hbm_controller.h"
#include "mem/main_memory.h"
#include "mem/tcdm.h"
#include "sim/component.h"

namespace mco::fault {
class FaultInjector;
}

namespace mco::mem {

struct DmaConfig {
  /// Cycles the DMA core spends programming one transfer.
  sim::Cycles setup_cycles = 6;
};

class DmaEngine : public sim::Component {
 public:
  using Callback = std::function<void()>;

  DmaEngine(sim::Simulator& sim, std::string name, DmaConfig cfg, HbmController& hbm,
            unsigned hbm_port, MainMemory& main_mem, Tcdm& tcdm, const AddressMap& map,
            Component* parent = nullptr);

  const DmaConfig& config() const { return cfg_; }
  unsigned hbm_port() const { return hbm_port_; }

  /// Wire the fault injector (nullptr = fault-free). `cluster` identifies the
  /// owning cluster for target filtering. Transfers may then stall for extra
  /// cycles during setup (backpressured DMA core).
  void set_fault_injector(fault::FaultInjector* fi, unsigned cluster) {
    fault_ = fi;
    cluster_ = cluster;
  }

  /// HBM → TCDM. `hbm_addr` is a physical HBM address; `tcdm_offset` is a
  /// cluster-local byte offset.
  void transfer_in(Addr hbm_addr, std::size_t tcdm_offset, std::size_t bytes, Callback done);

  /// TCDM → HBM.
  void transfer_out(std::size_t tcdm_offset, Addr hbm_addr, std::size_t bytes, Callback done);

  std::uint64_t transfers_in() const { return transfers_in_; }
  std::uint64_t transfers_out() const { return transfers_out_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  void start(bool inbound, Addr hbm_addr, std::size_t tcdm_offset, std::size_t bytes,
             Callback done);

  DmaConfig cfg_;
  fault::FaultInjector* fault_ = nullptr;
  unsigned cluster_ = 0;
  HbmController& hbm_;
  unsigned hbm_port_;
  MainMemory& main_mem_;
  Tcdm& tcdm_;
  const AddressMap& map_;
  std::uint64_t transfers_in_ = 0;
  std::uint64_t transfers_out_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace mco::mem
