#include "mem/main_memory.h"

#include <cstring>
#include <new>
#include <stdexcept>

#include "util/strings.h"

namespace mco::mem {

MainMemory::MainMemory(std::size_t size, bool eager_zero) : size_(size) {
  if (size == 0) throw std::invalid_argument("MainMemory: zero size");
  // calloc: the OS maps zero pages lazily, so untouched HBM costs nothing.
  bytes_.reset(static_cast<std::uint8_t*>(std::calloc(size, 1)));
  if (!bytes_) throw std::bad_alloc();
  if (eager_zero) {
    // Pre-PR behaviour: fault in every page up front, like the original
    // std::vector<uint8_t>(size, 0) did. Volatile stores — a plain
    // memset(0) over fresh calloc memory is provably redundant and the
    // compiler deletes it, which would fake the cost away.
    volatile std::uint8_t* p = bytes_.get();
    for (std::size_t i = 0; i < size; i += 4096) p[i] = 0;
    if (size != 0) p[size - 1] = 0;
  }
}

void MainMemory::check(Addr offset, std::size_t n) const {
  if (offset > size_ || n > size_ - offset) {
    throw std::out_of_range(util::format("MainMemory: access [0x%llx, +%zu) beyond size %zu",
                                         static_cast<unsigned long long>(offset), n,
                                         size_));
  }
}

void MainMemory::write(Addr offset, std::span<const std::uint8_t> data_in) {
  check(offset, data_in.size());
  std::memcpy(bytes_.get() + offset, data_in.data(), data_in.size());
}

void MainMemory::read(Addr offset, std::span<std::uint8_t> out) const {
  check(offset, out.size());
  std::memcpy(out.data(), bytes_.get() + offset, out.size());
}

void MainMemory::write_u64(Addr offset, std::uint64_t v) {
  check(offset, 8);
  std::memcpy(bytes_.get() + offset, &v, 8);
}

std::uint64_t MainMemory::read_u64(Addr offset) const {
  check(offset, 8);
  std::uint64_t v;
  std::memcpy(&v, bytes_.get() + offset, 8);
  return v;
}

void MainMemory::write_f64(Addr offset, double v) {
  check(offset, 8);
  std::memcpy(bytes_.get() + offset, &v, 8);
}

double MainMemory::read_f64(Addr offset) const {
  check(offset, 8);
  double v;
  std::memcpy(&v, bytes_.get() + offset, 8);
  return v;
}

void MainMemory::write_f64_array(Addr offset, std::span<const double> values) {
  check(offset, values.size() * 8);
  std::memcpy(bytes_.get() + offset, values.data(), values.size() * 8);
}

std::vector<double> MainMemory::read_f64_array(Addr offset, std::size_t n) const {
  check(offset, n * 8);
  std::vector<double> out(n);
  std::memcpy(out.data(), bytes_.get() + offset, n * 8);
  return out;
}

void MainMemory::fill(Addr offset, std::size_t n, std::uint8_t value) {
  check(offset, n);
  std::memset(bytes_.get() + offset, value, n);
}

std::uint8_t* MainMemory::data(Addr offset, std::size_t n) {
  check(offset, n);
  return bytes_.get() + offset;
}

const std::uint8_t* MainMemory::data(Addr offset, std::size_t n) const {
  check(offset, n);
  return bytes_.get() + offset;
}

}  // namespace mco::mem
