#include "mem/main_memory.h"

#include <cstring>
#include <stdexcept>

#include "util/strings.h"

namespace mco::mem {

MainMemory::MainMemory(std::size_t size) : bytes_(size, 0) {
  if (size == 0) throw std::invalid_argument("MainMemory: zero size");
}

void MainMemory::check(Addr offset, std::size_t n) const {
  if (offset > bytes_.size() || n > bytes_.size() - offset) {
    throw std::out_of_range(util::format("MainMemory: access [0x%llx, +%zu) beyond size %zu",
                                         static_cast<unsigned long long>(offset), n,
                                         bytes_.size()));
  }
}

void MainMemory::write(Addr offset, std::span<const std::uint8_t> data_in) {
  check(offset, data_in.size());
  std::memcpy(bytes_.data() + offset, data_in.data(), data_in.size());
}

void MainMemory::read(Addr offset, std::span<std::uint8_t> out) const {
  check(offset, out.size());
  std::memcpy(out.data(), bytes_.data() + offset, out.size());
}

void MainMemory::write_u64(Addr offset, std::uint64_t v) {
  check(offset, 8);
  std::memcpy(bytes_.data() + offset, &v, 8);
}

std::uint64_t MainMemory::read_u64(Addr offset) const {
  check(offset, 8);
  std::uint64_t v;
  std::memcpy(&v, bytes_.data() + offset, 8);
  return v;
}

void MainMemory::write_f64(Addr offset, double v) {
  check(offset, 8);
  std::memcpy(bytes_.data() + offset, &v, 8);
}

double MainMemory::read_f64(Addr offset) const {
  check(offset, 8);
  double v;
  std::memcpy(&v, bytes_.data() + offset, 8);
  return v;
}

void MainMemory::write_f64_array(Addr offset, std::span<const double> values) {
  check(offset, values.size() * 8);
  std::memcpy(bytes_.data() + offset, values.data(), values.size() * 8);
}

std::vector<double> MainMemory::read_f64_array(Addr offset, std::size_t n) const {
  check(offset, n * 8);
  std::vector<double> out(n);
  std::memcpy(out.data(), bytes_.data() + offset, n * 8);
  return out;
}

void MainMemory::fill(Addr offset, std::size_t n, std::uint8_t value) {
  check(offset, n);
  std::memset(bytes_.data() + offset, value, n);
}

std::uint8_t* MainMemory::data(Addr offset, std::size_t n) {
  check(offset, n);
  return bytes_.data() + offset;
}

const std::uint8_t* MainMemory::data(Addr offset, std::size_t n) const {
  check(offset, n);
  return bytes_.data() + offset;
}

}  // namespace mco::mem
