#include "mem/address_map.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::mem {

const char* to_string(Region r) {
  switch (r) {
    case Region::kSyncUnit: return "sync_unit";
    case Region::kMailbox: return "mailbox";
    case Region::kTcdm: return "tcdm";
    case Region::kHbm: return "hbm";
    case Region::kUnmapped: return "unmapped";
  }
  return "?";
}

AddressMap::AddressMap(AddressMapConfig cfg) : cfg_(cfg) {
  if (cfg_.num_clusters == 0) throw std::invalid_argument("AddressMap: num_clusters == 0");
  if (cfg_.tcdm_size > cfg_.tcdm_stride)
    throw std::invalid_argument("AddressMap: tcdm_size exceeds tcdm_stride");
}

Region AddressMap::region_of(Addr a) const {
  if (a >= cfg_.hbm_base && a < cfg_.hbm_base + cfg_.hbm_size) return Region::kHbm;
  if (a >= cfg_.tcdm_base && a < cfg_.tcdm_base + cfg_.tcdm_stride * cfg_.num_clusters) {
    const Addr off = (a - cfg_.tcdm_base) % cfg_.tcdm_stride;
    return off < cfg_.tcdm_size ? Region::kTcdm : Region::kUnmapped;
  }
  if (a >= cfg_.mailbox_base && a < cfg_.mailbox_base + cfg_.mailbox_stride * cfg_.num_clusters)
    return Region::kMailbox;
  if (a >= cfg_.sync_unit_base && a < cfg_.sync_unit_base + cfg_.sync_unit_size)
    return Region::kSyncUnit;
  return Region::kUnmapped;
}

Addr AddressMap::hbm_offset(Addr a) const {
  if (!is_hbm(a)) throw std::out_of_range(util::format("not an HBM address: 0x%llx",
                                                       static_cast<unsigned long long>(a)));
  return a - cfg_.hbm_base;
}

unsigned AddressMap::cluster_of(Addr a) const {
  const Region r = region_of(a);
  if (r == Region::kTcdm)
    return static_cast<unsigned>((a - cfg_.tcdm_base) / cfg_.tcdm_stride);
  if (r == Region::kMailbox)
    return static_cast<unsigned>((a - cfg_.mailbox_base) / cfg_.mailbox_stride);
  throw std::out_of_range(util::format("address 0x%llx is not cluster-owned",
                                       static_cast<unsigned long long>(a)));
}

Addr AddressMap::tcdm_offset(Addr a) const {
  if (!is_tcdm(a)) throw std::out_of_range(util::format("not a TCDM address: 0x%llx",
                                                        static_cast<unsigned long long>(a)));
  return (a - cfg_.tcdm_base) % cfg_.tcdm_stride;
}

Addr AddressMap::tcdm_base(unsigned cluster) const {
  if (cluster >= cfg_.num_clusters) throw std::out_of_range("AddressMap: cluster index");
  return cfg_.tcdm_base + cluster * cfg_.tcdm_stride;
}

Addr AddressMap::mailbox_base(unsigned cluster) const {
  if (cluster >= cfg_.num_clusters) throw std::out_of_range("AddressMap: cluster index");
  return cfg_.mailbox_base + cluster * cfg_.mailbox_stride;
}

std::string AddressMap::describe(Addr a) const {
  const Region r = region_of(a);
  switch (r) {
    case Region::kHbm:
      return util::format("hbm+0x%llx", static_cast<unsigned long long>(hbm_offset(a)));
    case Region::kTcdm:
      return util::format("cluster%u.tcdm+0x%llx", cluster_of(a),
                          static_cast<unsigned long long>(tcdm_offset(a)));
    case Region::kMailbox: return util::format("cluster%u.mailbox", cluster_of(a));
    case Region::kSyncUnit: return "sync_unit";
    case Region::kUnmapped: break;
  }
  return util::format("unmapped:0x%llx", static_cast<unsigned long long>(a));
}

}  // namespace mco::mem
