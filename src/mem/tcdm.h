// Tightly-coupled data memory (TCDM): per-cluster banked scratchpad.
//
// Functionally a byte array local to one cluster; worker cores and the DMA
// engine read/write real data through it. Banking is tracked for statistics
// (bank utilization), while access timing is folded into the calibrated
// per-kernel compute rates (see kernels/), matching how the paper's 2.6
// cycles/element DAXPY throughput already includes TCDM access effects.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/component.h"

namespace mco::mem {

struct TcdmConfig {
  std::size_t size_bytes = 128 * 1024;
  unsigned num_banks = 32;
  unsigned bytes_per_bank_word = 8;
};

class Tcdm : public sim::Component {
 public:
  Tcdm(sim::Simulator& sim, std::string name, TcdmConfig cfg, Component* parent = nullptr);

  const TcdmConfig& config() const { return cfg_; }
  std::size_t size() const { return bytes_.size(); }

  void write(std::size_t offset, std::span<const std::uint8_t> data);
  void read(std::size_t offset, std::span<std::uint8_t> out) const;

  void write_f64(std::size_t offset, double v);
  double read_f64(std::size_t offset) const;

  void write_f64_array(std::size_t offset, std::span<const double> values);
  std::vector<double> read_f64_array(std::size_t offset, std::size_t n) const;

  void write_u64(std::size_t offset, std::uint64_t v);
  std::uint64_t read_u64(std::size_t offset) const;

  /// Bank index of a byte offset.
  unsigned bank_of(std::size_t offset) const;

  /// Raw view for DMA block copies (bounds-checked).
  std::uint8_t* data(std::size_t offset, std::size_t n);
  const std::uint8_t* data(std::size_t offset, std::size_t n) const;

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void check(std::size_t offset, std::size_t n) const;

  TcdmConfig cfg_;
  std::vector<std::uint8_t> bytes_;
  mutable std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace mco::mem
