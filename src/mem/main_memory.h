// HBM backing store: the functional (data) half of main memory.
//
// Timing is modeled separately by HbmController; this class only holds bytes
// so kernels can really read inputs and write results that tests verify.
//
// The store is calloc-backed and lazily zeroed: the OS hands out zero pages
// on first touch, so constructing a 64 MiB HBM costs microseconds instead of
// a full memset — the dominant per-Soc setup cost in sweep benches that
// build a fresh Soc per point (docs/performance.md quantifies this).
// `eager_zero` reproduces the original touch-everything construction for the
// legacy-engine comparison in bench_simspeed.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "mem/address_map.h"

namespace mco::mem {

class MainMemory {
 public:
  /// Backing store of `size` bytes, addressed [0, size) (HBM offsets), zero
  /// initialized. With `eager_zero` every page is touched up front.
  explicit MainMemory(std::size_t size, bool eager_zero = false);

  std::size_t size() const { return size_; }

  void write(Addr offset, std::span<const std::uint8_t> data);
  void read(Addr offset, std::span<std::uint8_t> out) const;

  void write_u64(Addr offset, std::uint64_t v);
  std::uint64_t read_u64(Addr offset) const;

  void write_f64(Addr offset, double v);
  double read_f64(Addr offset) const;

  /// Write `n` doubles starting at `offset`.
  void write_f64_array(Addr offset, std::span<const double> values);
  /// Read `n` doubles starting at `offset`.
  std::vector<double> read_f64_array(Addr offset, std::size_t n) const;

  void fill(Addr offset, std::size_t n, std::uint8_t value);

  /// Raw view for DMA block copies (bounds-checked).
  std::uint8_t* data(Addr offset, std::size_t n);
  const std::uint8_t* data(Addr offset, std::size_t n) const;

 private:
  struct FreeDeleter {
    void operator()(std::uint8_t* p) const { std::free(p); }
  };

  void check(Addr offset, std::size_t n) const;

  std::unique_ptr<std::uint8_t[], FreeDeleter> bytes_;
  std::size_t size_ = 0;
};

}  // namespace mco::mem
