#include "mem/dma_engine.h"

#include <cstring>
#include <utility>

#include "fault/fault_injector.h"
#include "util/math.h"

namespace mco::mem {

DmaEngine::DmaEngine(sim::Simulator& sim, std::string name, DmaConfig cfg, HbmController& hbm,
                     unsigned hbm_port, MainMemory& main_mem, Tcdm& tcdm, const AddressMap& map,
                     Component* parent)
    : Component(sim, std::move(name), parent),
      cfg_(cfg),
      hbm_(hbm),
      hbm_port_(hbm_port),
      main_mem_(main_mem),
      tcdm_(tcdm),
      map_(map) {}

void DmaEngine::transfer_in(Addr hbm_addr, std::size_t tcdm_offset, std::size_t bytes,
                            Callback done) {
  start(/*inbound=*/true, hbm_addr, tcdm_offset, bytes, std::move(done));
}

void DmaEngine::transfer_out(std::size_t tcdm_offset, Addr hbm_addr, std::size_t bytes,
                             Callback done) {
  start(/*inbound=*/false, hbm_addr, tcdm_offset, bytes, std::move(done));
}

void DmaEngine::start(bool inbound, Addr hbm_addr, std::size_t tcdm_offset, std::size_t bytes,
                      Callback done) {
  const Addr hbm_off = map_.hbm_offset(hbm_addr);  // validates the address
  const std::uint64_t beats = util::ceil_div<std::uint64_t>(bytes, 8);

  sim::Cycles setup = cfg_.setup_cycles;
  if (fault_ && fault_->enabled()) setup += fault_->on_dma_setup(cluster_);

  // Setup models the DMA-core configuration (source/dest/size registers).
  defer(setup, [this, inbound, hbm_off, tcdm_offset, bytes, beats,
                            cb = std::move(done)]() mutable {
    hbm_.request(hbm_port_, beats,
                 [this, inbound, hbm_off, tcdm_offset, bytes, cb = std::move(cb)]() mutable {
                   if (bytes > 0) {
                     if (inbound) {
                       std::memcpy(tcdm_.data(tcdm_offset, bytes),
                                   std::as_const(main_mem_).data(hbm_off, bytes), bytes);
                     } else {
                       std::memcpy(main_mem_.data(hbm_off, bytes),
                                   std::as_const(tcdm_).data(tcdm_offset, bytes), bytes);
                     }
                   }
                   bytes_moved_ += bytes;
                   if (cb) cb();
                 });
    if (inbound) ++transfers_in_;
    else ++transfers_out_;
  });
}

}  // namespace mco::mem
