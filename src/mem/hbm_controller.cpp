#include "mem/hbm_controller.h"

#include <stdexcept>

namespace mco::mem {

HbmController::HbmController(sim::Simulator& sim, std::string name, HbmConfig cfg,
                             Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg), ports_(cfg.num_ports) {
  if (cfg_.beats_per_cycle == 0) throw std::invalid_argument("HbmController: zero bandwidth");
  if (cfg_.num_ports == 0) throw std::invalid_argument("HbmController: zero ports");
}

bool HbmController::busy() const {
  if (pending_activations_ > 0) return true;
  for (const auto& q : ports_) {
    if (!q.empty()) return true;
  }
  return false;
}

void HbmController::request(unsigned port, std::uint64_t beats, Callback on_complete) {
  if (port >= cfg_.num_ports) throw std::out_of_range("HbmController: bad port");
  ++pending_activations_;
  defer(cfg_.request_latency,
        [this, port, beats, cb = std::move(on_complete)]() mutable {
          --pending_activations_;
          if (beats == 0) {
            ++transfers_completed_;
            if (cb) cb();
            return;
          }
          ports_[port].push_back(Transfer{beats, std::move(cb)});
          ensure_ticking();
        },
        sim::Priority::kMemory);
}

void HbmController::ensure_ticking() {
  if (tick_scheduled_) return;
  tick_scheduled_ = true;
  defer(1, [this] { tick(); }, sim::Priority::kMemory);
}

void HbmController::tick() {
  tick_scheduled_ = false;

  // Serve up to beats_per_cycle beats this cycle, one beat per port visit,
  // walking round-robin from rr_next_. Completion callbacks run immediately
  // (same cycle, after the last beat) — downstream consumers model their own
  // latencies.
  unsigned served = 0;
  unsigned idle_visits = 0;
  while (served < cfg_.beats_per_cycle && idle_visits < cfg_.num_ports) {
    auto& q = ports_[rr_next_];
    rr_next_ = (rr_next_ + 1) % cfg_.num_ports;
    if (q.empty()) {
      ++idle_visits;
      continue;
    }
    idle_visits = 0;
    Transfer& t = q.front();
    --t.remaining;
    ++served;
    ++beats_served_;
    if (t.remaining == 0) {
      Callback cb = std::move(t.on_complete);
      q.pop_front();
      ++transfers_completed_;
      if (cb) cb();
    }
  }
  if (served > 0) ++busy_cycles_;

  for (const auto& q : ports_) {
    if (!q.empty()) {
      ensure_ticking();
      return;
    }
  }
}

}  // namespace mco::mem
