// Physical address map of the simulated MPSoC.
//
// Mirrors the Manticore/Occamy style layout: peripherals low, per-cluster
// TCDM windows in the middle, HBM high. All bases/strides are parameters so
// tests can exercise odd configurations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mco::mem {

using Addr = std::uint64_t;

/// Region identifiers for address decoding.
enum class Region { kSyncUnit, kMailbox, kTcdm, kHbm, kUnmapped };

const char* to_string(Region r);

struct AddressMapConfig {
  Addr sync_unit_base = 0x0200'0000;
  Addr sync_unit_size = 0x1000;

  Addr mailbox_base = 0x0300'0000;
  Addr mailbox_stride = 0x1000;  // one window per cluster

  Addr tcdm_base = 0x1000'0000;
  Addr tcdm_stride = 0x0010'0000;  // 1 MiB window per cluster
  Addr tcdm_size = 128 * 1024;     // 128 KiB usable per cluster

  Addr hbm_base = 0x8000'0000;
  Addr hbm_size = 64ull * 1024 * 1024;

  unsigned num_clusters = 32;
};

/// Decodes physical addresses into (region, cluster, offset).
class AddressMap {
 public:
  explicit AddressMap(AddressMapConfig cfg = {});

  const AddressMapConfig& config() const { return cfg_; }

  Region region_of(Addr a) const;

  bool is_hbm(Addr a) const { return region_of(a) == Region::kHbm; }
  bool is_tcdm(Addr a) const { return region_of(a) == Region::kTcdm; }

  /// Offset within the HBM region. Throws std::out_of_range if not HBM.
  Addr hbm_offset(Addr a) const;

  /// Cluster index owning a TCDM/mailbox address. Throws if not such.
  unsigned cluster_of(Addr a) const;

  /// Offset within the owning cluster's TCDM. Throws if not TCDM.
  Addr tcdm_offset(Addr a) const;

  /// Base address of cluster `i`'s TCDM window.
  Addr tcdm_base(unsigned cluster) const;

  /// Base address of cluster `i`'s mailbox window.
  Addr mailbox_base(unsigned cluster) const;

  Addr hbm_base() const { return cfg_.hbm_base; }
  Addr hbm_end() const { return cfg_.hbm_base + cfg_.hbm_size; }

  std::string describe(Addr a) const;

 private:
  AddressMapConfig cfg_;
};

}  // namespace mco::mem
