#include "mem/tcdm.h"

#include <cstring>
#include <stdexcept>

#include "util/strings.h"

namespace mco::mem {

Tcdm::Tcdm(sim::Simulator& sim, std::string name, TcdmConfig cfg, Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg), bytes_(cfg.size_bytes, 0) {
  if (cfg_.size_bytes == 0) throw std::invalid_argument("Tcdm: zero size");
  if (cfg_.num_banks == 0) throw std::invalid_argument("Tcdm: zero banks");
}

void Tcdm::check(std::size_t offset, std::size_t n) const {
  if (offset > bytes_.size() || n > bytes_.size() - offset) {
    throw std::out_of_range(util::format("%s: access [0x%zx, +%zu) beyond size %zu", path().c_str(),
                                         offset, n, bytes_.size()));
  }
}

void Tcdm::write(std::size_t offset, std::span<const std::uint8_t> data_in) {
  check(offset, data_in.size());
  std::memcpy(bytes_.data() + offset, data_in.data(), data_in.size());
  bytes_written_ += data_in.size();
}

void Tcdm::read(std::size_t offset, std::span<std::uint8_t> out) const {
  check(offset, out.size());
  std::memcpy(out.data(), bytes_.data() + offset, out.size());
  bytes_read_ += out.size();
}

void Tcdm::write_f64(std::size_t offset, double v) {
  check(offset, 8);
  std::memcpy(bytes_.data() + offset, &v, 8);
  bytes_written_ += 8;
}

double Tcdm::read_f64(std::size_t offset) const {
  check(offset, 8);
  double v;
  std::memcpy(&v, bytes_.data() + offset, 8);
  bytes_read_ += 8;
  return v;
}

void Tcdm::write_f64_array(std::size_t offset, std::span<const double> values) {
  check(offset, values.size() * 8);
  std::memcpy(bytes_.data() + offset, values.data(), values.size() * 8);
  bytes_written_ += values.size() * 8;
}

std::vector<double> Tcdm::read_f64_array(std::size_t offset, std::size_t n) const {
  check(offset, n * 8);
  std::vector<double> out(n);
  std::memcpy(out.data(), bytes_.data() + offset, n * 8);
  bytes_read_ += n * 8;
  return out;
}

void Tcdm::write_u64(std::size_t offset, std::uint64_t v) {
  check(offset, 8);
  std::memcpy(bytes_.data() + offset, &v, 8);
  bytes_written_ += 8;
}

std::uint64_t Tcdm::read_u64(std::size_t offset) const {
  check(offset, 8);
  std::uint64_t v;
  std::memcpy(&v, bytes_.data() + offset, 8);
  bytes_read_ += 8;
  return v;
}

unsigned Tcdm::bank_of(std::size_t offset) const {
  return static_cast<unsigned>((offset / cfg_.bytes_per_bank_word) % cfg_.num_banks);
}

std::uint8_t* Tcdm::data(std::size_t offset, std::size_t n) {
  check(offset, n);
  bytes_written_ += n;  // raw views are used by DMA writes
  return bytes_.data() + offset;
}

const std::uint8_t* Tcdm::data(std::size_t offset, std::size_t n) const {
  check(offset, n);
  bytes_read_ += n;
  return bytes_.data() + offset;
}

}  // namespace mco::mem
