// HBM controller timing model: a fixed aggregate bandwidth shared fairly
// (round-robin, one 64-bit beat at a time) among all requesting ports.
//
// This is the mechanism behind the paper's N/4 "serial" data term: a DAXPY
// moves 3N doubles through this controller regardless of how many clusters
// participate, so with 12 doubles/cycle of aggregate bandwidth the data phase
// costs ~3N/12 = N/4 cycles independent of M. Fair round-robin service also
// means equal-sized concurrent transfers complete within a beat of each
// other, which is what makes the compute phases of all clusters start (and
// the additive runtime model hold) together.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/component.h"

namespace mco::mem {

struct HbmConfig {
  /// Aggregate bandwidth in 64-bit beats (doubles) per cycle.
  unsigned beats_per_cycle = 12;
  /// Pipeline latency from request issue to first beat service.
  sim::Cycles request_latency = 8;
  /// Number of requester ports (one per cluster DMA + one host port).
  unsigned num_ports = 33;
};

/// Timing-only model of the shared HBM channel.
class HbmController : public sim::Component {
 public:
  using Callback = std::function<void()>;

  HbmController(sim::Simulator& sim, std::string name, HbmConfig cfg,
                Component* parent = nullptr);

  const HbmConfig& config() const { return cfg_; }

  /// Enqueue a transfer of `beats` 64-bit beats on `port`; `on_complete`
  /// fires the cycle the last beat is served. Zero-beat transfers complete
  /// after request_latency only. A port may have several outstanding
  /// transfers; they are served in FIFO order per port.
  void request(unsigned port, std::uint64_t beats, Callback on_complete);

  /// Beats served so far (stats).
  std::uint64_t beats_served() const { return beats_served_; }
  std::uint64_t transfers_completed() const { return transfers_completed_; }
  /// Cycles in which at least one beat was served.
  std::uint64_t busy_cycles() const { return busy_cycles_; }

  /// True if any transfer is in flight or waiting.
  bool busy() const;

 private:
  struct Transfer {
    std::uint64_t remaining;
    Callback on_complete;
  };

  void tick();
  void ensure_ticking();

  HbmConfig cfg_;
  std::vector<std::deque<Transfer>> ports_;  // active queue per port
  unsigned rr_next_ = 0;                     // round-robin pointer (port index)
  std::uint64_t pending_activations_ = 0;    // requested but not yet active
  bool tick_scheduled_ = false;
  std::uint64_t beats_served_ = 0;
  std::uint64_t transfers_completed_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace mco::mem
