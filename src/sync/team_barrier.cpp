#include "sync/team_barrier.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::sync {

TeamBarrier::TeamBarrier(sim::Simulator& sim, std::string name, TeamBarrierConfig cfg,
                         Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg) {}

void TeamBarrier::arrive(unsigned expected, std::function<void()> resume) {
  if (expected == 0) throw std::invalid_argument(path() + ": zero-sized team");
  if (waiters_.empty()) {
    expected_ = expected;
  } else if (expected != expected_) {
    throw std::logic_error(util::format("%s: member expects team of %u but episode is %u",
                                        path().c_str(), expected, expected_));
  }
  waiters_.push_back(std::move(resume));
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.record(now(), path(), "arrive",
                       util::format("%zu/%u", waiters_.size(), expected_));
  if (waiters_.size() == expected_) {
    auto released = std::move(waiters_);
    waiters_.clear();
    ++episodes_;
    defer(cfg_.release_latency, [rs = std::move(released)] {
      for (const auto& r : rs) {
        if (r) r();
      }
    }, sim::Priority::kWire);
  }
}

}  // namespace mco::sync
