// Per-cluster mailbox: the doorbell + argument FIFO job dispatch lands in.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "noc/message.h"
#include "sim/component.h"

namespace mco::sync {

/// Receives DispatchMessages from the interconnect. The last word of a
/// dispatch acts as the doorbell: delivery of a message wakes the cluster
/// (via the registered callback). Messages queue if the cluster is busy.
class Mailbox : public sim::Component {
 public:
  using DoorbellCallback = std::function<void()>;

  Mailbox(sim::Simulator& sim, std::string name, Component* parent = nullptr);

  /// Wire the cluster's wakeup input.
  void set_doorbell(DoorbellCallback cb) { doorbell_ = std::move(cb); }

  /// Interconnect delivery entry point.
  void deliver(const noc::DispatchMessage& msg);

  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }

  /// Pop the oldest pending message. Throws std::logic_error when empty —
  /// a cluster must only pop after its doorbell rang.
  noc::DispatchMessage pop();

  /// Discard all queued messages without ringing the doorbell. Used by the
  /// host's recovery path to kill a stale dispatch before re-issuing it.
  void clear() { queue_.clear(); }

  std::uint64_t messages_received() const { return received_; }

 private:
  DoorbellCallback doorbell_;
  std::deque<noc::DispatchMessage> queue_;
  std::uint64_t received_ = 0;
};

}  // namespace mco::sync
