// Accelerator-global team-start barrier.
//
// A job offloaded to M clusters executes as one SPMD team: every cluster
// parses its dispatch, then waits at a fabric-level barrier until all M
// members arrived, and only then starts its data movement. (Manticore's
// fabric provides hardware barrier/atomic support for this independent of
// the paper's two extensions, so both the baseline and extended designs use
// it.) This is why sequential dispatch hurts: the *last* cluster to receive
// the job gates the start of the whole team, making the per-cluster dispatch
// cost fully serial with execution — the linear overhead of Fig. 1 (left).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/component.h"

namespace mco::sync {

struct TeamBarrierConfig {
  /// Release propagation after the last member arrives.
  sim::Cycles release_latency = 12;
};

class TeamBarrier : public sim::Component {
 public:
  TeamBarrier(sim::Simulator& sim, std::string name, TeamBarrierConfig cfg,
              Component* parent = nullptr);

  /// Arrive at the barrier expecting a team of `expected` members; `resume`
  /// fires release_latency cycles after the `expected`-th arrival. All
  /// members of one episode must agree on `expected` (std::logic_error
  /// otherwise — it would be a runtime protocol bug).
  void arrive(unsigned expected, std::function<void()> resume);

  /// Members currently waiting.
  unsigned waiting() const { return static_cast<unsigned>(waiters_.size()); }

  std::uint64_t episodes_completed() const { return episodes_; }

 private:
  TeamBarrierConfig cfg_;
  unsigned expected_ = 0;
  std::vector<std::function<void()>> waiters_;
  std::uint64_t episodes_ = 0;
};

}  // namespace mco::sync
