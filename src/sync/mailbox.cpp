#include "sync/mailbox.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::sync {

Mailbox::Mailbox(sim::Simulator& sim, std::string name, Component* parent)
    : Component(sim, std::move(name), parent) {}

void Mailbox::deliver(const noc::DispatchMessage& msg) {
  ++received_;
  queue_.push_back(msg);
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.record(now(), path(), "doorbell", util::format("words=%zu", msg.size_words()));
  if (doorbell_) doorbell_();
}

noc::DispatchMessage Mailbox::pop() {
  if (queue_.empty()) throw std::logic_error(path() + ": pop from empty mailbox");
  noc::DispatchMessage msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

}  // namespace mco::sync
