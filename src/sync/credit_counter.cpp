#include "sync/credit_counter.h"

#include <stdexcept>

#include "util/strings.h"

namespace mco::sync {

CreditCounterUnit::CreditCounterUnit(sim::Simulator& sim, std::string name,
                                     CreditCounterConfig cfg, Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg) {}

void CreditCounterUnit::arm(std::uint32_t new_threshold) {
  if (new_threshold == 0) throw std::invalid_argument(path() + ": zero threshold");
  if (armed_ && count_ < threshold_)
    throw std::logic_error(path() + ": re-armed while an offload is still pending");
  armed_ = true;
  threshold_ = new_threshold;
  count_ = 0;
  sim().trace().record(now(), path(), "arm", util::format("threshold=%u", new_threshold));
}

void CreditCounterUnit::increment() {
  if (!armed_) {
    ++spurious_increments_;
    sim().logger().log(now(), sim::LogLevel::kWarn, path(), "increment while unarmed");
    return;
  }
  ++count_;
  sim().trace().record(now(), path(), "credit", util::format("count=%u/%u", count_, threshold_));
  if (count_ == threshold_) {
    armed_ = false;
    ++interrupts_fired_;
    if (irq_cb_) {
      defer(cfg_.trigger_latency, [this] { irq_cb_(); }, sim::Priority::kWire);
    }
  }
}

void CreditCounterUnit::reset() {
  armed_ = false;
  threshold_ = 0;
  count_ = 0;
}

}  // namespace mco::sync
