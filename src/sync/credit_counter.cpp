#include "sync/credit_counter.h"

#include <stdexcept>

#include "fault/fault_injector.h"
#include "util/strings.h"

namespace mco::sync {

CreditCounterUnit::CreditCounterUnit(sim::Simulator& sim, std::string name,
                                     CreditCounterConfig cfg, Component* parent)
    : Component(sim, std::move(name), parent),
      cfg_(cfg),
      arrival_hist_(sim.stats().histogram(this->name() + ".arrival_offset_cycles", 16.0, 64)),
      time_to_threshold_hist_(
          sim.stats().histogram(this->name() + ".time_to_threshold_cycles", 16.0, 64)) {}

void CreditCounterUnit::arm(std::uint32_t new_threshold) {
  if (new_threshold == 0) throw std::invalid_argument(path() + ": zero threshold");
  if (armed_ && count_ < threshold_)
    throw std::logic_error(path() + ": re-armed while an offload is still pending");
  if (irq_pending_)
    throw std::logic_error(path() + ": re-armed while the IRQ assertion is still in flight");
  armed_ = true;
  threshold_ = new_threshold;
  count_ = 0;
  armed_at_ = now();
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.record(now(), path(), "arm", util::format("threshold=%u", new_threshold));
}

void CreditCounterUnit::increment(unsigned cluster) {
  unsigned applications = 1;
  if (fault_ && fault_->enabled()) {
    switch (fault_->on_credit(cluster)) {
      case fault::FaultInjector::CreditFault::kDrop:
        return;  // the register write is lost in flight: no count, no done bit
      case fault::FaultInjector::CreditFault::kDuplicate:
        applications = 2;  // replayed store: the counter sees it twice
        break;
      case fault::FaultInjector::CreditFault::kNone:
        break;
    }
  }
  // The done bit latches on any delivered write, armed or not — it is the
  // register's value, not counter logic, so recovery readback can trust it
  // even for credits landing in an unarmed window.
  if (cluster < done_.size()) done_[cluster] = true;
  for (unsigned i = 0; i < applications; ++i) {
    if (!armed_) {
      ++spurious_increments_;
      sim().logger().log(now(), sim::LogLevel::kWarn, path(), "increment while unarmed");
      if (sim::TraceSink& tr = sim().trace(); tr.armed())
        tr.record(now(), path(), "credit_spurious",
                           util::format("cluster=%u", cluster));
      continue;
    }
    if (count_ == UINT32_MAX)
      throw std::overflow_error(path() + ": credit counter wrapped at 2^32-1");
    ++count_;
    arrival_hist_.sample(static_cast<double>(now() - armed_at_));
    if (sim::TraceSink& tr = sim().trace(); tr.armed())
      tr.record(now(), path(), "credit",
                         util::format("count=%u/%u", count_, threshold_));
    if (count_ == threshold_) {
      armed_ = false;
      time_to_threshold_hist_.sample(static_cast<double>(now() - armed_at_));
      ++interrupts_fired_;
      if (irq_cb_) {
        irq_pending_ = true;
        defer(
            cfg_.trigger_latency,
            [this] {
              irq_pending_ = false;
              irq_cb_();
            },
            sim::Priority::kWire);
      }
    }
  }
}

void CreditCounterUnit::reset() {
  armed_ = false;
  threshold_ = 0;
  count_ = 0;
  sim().trace().record(now(), path(), "sync_reset");
}

void CreditCounterUnit::begin_tracking(unsigned num_clusters) {
  done_.assign(num_clusters, false);
}

bool CreditCounterUnit::cluster_done(unsigned cluster) const {
  return cluster < done_.size() && done_[cluster];
}

}  // namespace mco::sync
