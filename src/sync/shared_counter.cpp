#include "sync/shared_counter.h"

#include <algorithm>

#include "fault/fault_injector.h"
#include "util/strings.h"

namespace mco::sync {

SharedCounter::SharedCounter(sim::Simulator& sim, std::string name, SharedCounterConfig cfg,
                             Component* parent)
    : Component(sim, std::move(name), parent),
      cfg_(cfg),
      arrival_hist_(sim.stats().histogram(this->name() + ".arrival_offset_cycles", 16.0, 64)) {}

void SharedCounter::store(std::uint64_t value) {
  value_ = value;
  init_at_ = now();
  if (sim::TraceSink& tr = sim().trace(); tr.armed())
    tr.record(now(), path(), "store",
                       util::format("value=%llu", static_cast<unsigned long long>(value)));
}

void SharedCounter::amo_add(std::uint64_t delta, unsigned cluster) {
  if (fault_ && fault_->enabled()) {
    switch (fault_->on_credit(cluster)) {
      case fault::FaultInjector::CreditFault::kDrop:
        return;  // the AMO is lost before reaching the memory controller
      case fault::FaultInjector::CreditFault::kDuplicate:
        delta *= 2;  // replayed atomic: applied twice
        break;
      case fault::FaultInjector::CreditFault::kNone:
        break;
    }
  }
  ++in_flight_;
  max_in_flight_ = std::max(max_in_flight_, in_flight_);
  defer(cfg_.amo_latency_cycles,
        [this, delta, cluster] {
          --in_flight_;
          value_ += delta;
          if (cluster < done_.size()) done_[cluster] = true;
          ++amos_serviced_;
          arrival_hist_.sample(static_cast<double>(now() - init_at_));
          if (sim::TraceSink& tr = sim().trace(); tr.armed())
            tr.record(now(), path(), "amo_commit",
                               util::format("value=%llu",
                                            static_cast<unsigned long long>(value_)));
        },
        sim::Priority::kMemory);
}

void SharedCounter::begin_tracking(unsigned num_clusters) {
  done_.assign(num_clusters, false);
}

bool SharedCounter::cluster_done(unsigned cluster) const {
  return cluster < done_.size() && done_[cluster];
}

}  // namespace mco::sync
