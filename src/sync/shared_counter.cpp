#include "sync/shared_counter.h"

#include <algorithm>

#include "util/strings.h"

namespace mco::sync {

SharedCounter::SharedCounter(sim::Simulator& sim, std::string name, SharedCounterConfig cfg,
                             Component* parent)
    : Component(sim, std::move(name), parent), cfg_(cfg) {}

void SharedCounter::store(std::uint64_t value) {
  value_ = value;
  sim().trace().record(now(), path(), "store",
                       util::format("value=%llu", static_cast<unsigned long long>(value)));
}

void SharedCounter::amo_add(std::uint64_t delta) {
  ++in_flight_;
  max_in_flight_ = std::max(max_in_flight_, in_flight_);
  defer(cfg_.amo_latency_cycles,
        [this, delta] {
          --in_flight_;
          value_ += delta;
          ++amos_serviced_;
          sim().trace().record(now(), path(), "amo_commit",
                               util::format("value=%llu",
                                            static_cast<unsigned long long>(value_)));
        },
        sim::Priority::kMemory);
}

}  // namespace mco::sync
