// Dedicated accelerator→host synchronization unit (the paper's §II).
//
// A centralized credit counter: upon an offload the host arms the unit with
// the number of participating clusters as a threshold. Each cluster, when
// done, atomically increments the counter by writing a register (the
// increment is a side effect of the store). When the count reaches the
// threshold the unit fires an interrupt towards the host, with no software
// polling involved.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/component.h"

namespace mco::fault {
class FaultInjector;
}

namespace mco::sync {

struct CreditCounterConfig {
  /// Register write/trigger to IRQ-wire assertion latency.
  sim::Cycles trigger_latency = 1;
};

class CreditCounterUnit : public sim::Component {
 public:
  using IrqCallback = std::function<void()>;

  CreditCounterUnit(sim::Simulator& sim, std::string name, CreditCounterConfig cfg,
                    Component* parent = nullptr);

  /// Wire the interrupt output (the host's IRQ input).
  void set_irq_callback(IrqCallback cb) { irq_cb_ = std::move(cb); }

  /// Wire the fault injector (nullptr = fault-free). Credit writes then
  /// consult it for drop/duplicate faults.
  void set_fault_injector(fault::FaultInjector* fi) { fault_ = fi; }

  /// Host programs the threshold and clears the count. Throws
  /// std::logic_error if a previous offload is still pending (count below a
  /// non-zero threshold) or if the IRQ wire assertion from the previous
  /// offload is still in flight (armed again inside the trigger-latency
  /// window) — hardware would corrupt state silently; we surface the misuse.
  void arm(std::uint32_t threshold);

  /// Credit-increment register write (side-effect increment). Counts arriving
  /// while the unit is not armed are recorded in spurious_increments() —
  /// they indicate a runtime bug (or a fault-recovery window; the per-cluster
  /// done bit is latched either way). The originating cluster travels with
  /// the write so the unit can keep a per-cluster completion bitmap — the
  /// readback surface the host's watchdog recovery uses to tell *which*
  /// clusters are missing.
  void increment(unsigned cluster = 0);

  /// Clear the counter/armed state without firing. The per-cluster bitmap is
  /// preserved: recovery re-arms the unit mid-job without losing track of
  /// which clusters already signalled.
  void reset();

  /// Host marks the start of a new job over `num_clusters` clusters: clears
  /// the per-cluster completion bitmap (piggybacks on the arm store; no extra
  /// cycles modelled).
  void begin_tracking(unsigned num_clusters);

  /// Whether `cluster` has signalled since the last begin_tracking().
  bool cluster_done(unsigned cluster) const;

  bool armed() const { return armed_; }
  std::uint32_t threshold() const { return threshold_; }
  std::uint32_t count() const { return count_; }
  /// True between the counter reaching threshold and the IRQ wire asserting
  /// (the trigger-latency window). arm() is illegal in this state.
  bool irq_pending() const { return irq_pending_; }

  std::uint64_t interrupts_fired() const { return interrupts_fired_; }
  std::uint64_t spurious_increments() const { return spurious_increments_; }

 private:
  CreditCounterConfig cfg_;
  IrqCallback irq_cb_;
  fault::FaultInjector* fault_ = nullptr;
  bool armed_ = false;
  bool irq_pending_ = false;
  std::uint32_t threshold_ = 0;
  std::uint32_t count_ = 0;
  std::vector<bool> done_;
  std::uint64_t interrupts_fired_ = 0;
  std::uint64_t spurious_increments_ = 0;
  // Observability: credit arrival offsets relative to the arm store, and
  // the arm→threshold latency (the paper's synchronization/notify phase as
  // the hardware sees it). Sampled per delivered credit / per fired IRQ.
  sim::Cycle armed_at_ = 0;
  sim::Histogram& arrival_hist_;
  sim::Histogram& time_to_threshold_hist_;
};

}  // namespace mco::sync
