// Baseline accelerator→host completion: a counter in shared memory.
//
// Without the dedicated sync unit, each finishing cluster performs an atomic
// fetch-and-add on a shared-memory location and the host busy-polls that
// location until it equals the number of participating clusters. The HBM
// controller's AMO datapath is pipelined (a coalescing buffer absorbs
// back-to-back increments), so concurrent AMOs commit in parallel after the
// round-trip latency rather than serializing — but that latency is the full
// uncached-atomic round trip, much longer than the sync unit's register
// write.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/component.h"

namespace mco::fault {
class FaultInjector;
}

namespace mco::sync {

struct SharedCounterConfig {
  /// Round-trip latency from AMO issue at the memory port to the new value
  /// being visible to a subsequent load.
  sim::Cycles amo_latency_cycles = 60;
};

class SharedCounter : public sim::Component {
 public:
  SharedCounter(sim::Simulator& sim, std::string name, SharedCounterConfig cfg,
                Component* parent = nullptr);

  /// Wire the fault injector (nullptr = fault-free). Completion AMOs then
  /// consult it for drop/duplicate faults.
  void set_fault_injector(fault::FaultInjector* fi) { fault_ = fi; }

  /// Host-side (re)initialization before an offload.
  void store(std::uint64_t value);

  /// An atomic increment arriving from a cluster; commits (becomes visible
  /// to loads) amo_latency_cycles later. The originating cluster is recorded
  /// in a per-cluster completion bitmap (the counter lives in ordinary
  /// shared memory, so a per-cluster flag word next to it costs nothing
  /// architecturally) — the host's watchdog recovery reads it back to tell
  /// which clusters are missing.
  void amo_add(std::uint64_t delta = 1, unsigned cluster = 0);

  /// Host marks the start of a new job over `num_clusters` clusters: clears
  /// the per-cluster bitmap (piggybacks on the counter-init store).
  void begin_tracking(unsigned num_clusters);

  /// Whether `cluster`'s completion AMO committed since begin_tracking().
  bool cluster_done(unsigned cluster) const;

  /// The committed value a load observes right now.
  std::uint64_t load() const { return value_; }

  std::uint64_t amos_serviced() const { return amos_serviced_; }
  /// Maximum number of AMOs in flight at once (contention probe).
  std::uint64_t max_in_flight() const { return max_in_flight_; }

 private:
  SharedCounterConfig cfg_;
  fault::FaultInjector* fault_ = nullptr;
  std::vector<bool> done_;
  std::uint64_t value_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t max_in_flight_ = 0;
  std::uint64_t amos_serviced_ = 0;
  // Observability: AMO commit offsets relative to the host's counter-init
  // store (the baseline design's completion-arrival timeline).
  sim::Cycle init_at_ = 0;
  sim::Histogram& arrival_hist_;
};

}  // namespace mco::sync
