#include "check/broken_credit_counter.h"

#include "util/strings.h"

namespace mco::check {

BrokenCreditCounter::BrokenCreditCounter(sim::Simulator& sim, std::string name, Bug bug,
                                         Component* parent)
    : Component(sim, std::move(name), parent), bug_(bug) {}

void BrokenCreditCounter::arm(std::uint32_t threshold) {
  armed_ = true;
  threshold_ = threshold;
  count_ = 0;
  sim().trace().record(now(), path(), "arm", util::format("threshold=%u", threshold));
}

void BrokenCreditCounter::fire_irq() {
  // The real unit asserts a wire into the interrupt controller, which logs
  // "irq"; the double folds the two for harness simplicity — the monitor
  // classifies by `what`, not by track.
  sim().trace().record(now(), path(), "irq");
  if (irq_cb_) irq_cb_();
}

void BrokenCreditCounter::increment(unsigned cluster) {
  ++arrivals_;

  if (bug_ == Bug::kLoseCredit && arrivals_ % 2 == 0) {
    return;  // the write is acknowledged but the count never moves
  }

  if (bug_ == Bug::kDoubleCount) {
    // Applies every write twice and never latches the disarm: the count
    // sails past the threshold (the IRQ still fires once, at the crossing).
    for (int i = 0; i < 2; ++i) {
      ++count_;
      sim().trace().record(now(), path(), "credit",
                           util::format("count=%u/%u", count_, threshold_));
      if (count_ == threshold_) fire_irq();
    }
    return;
  }

  if (!armed_) {
    // Faithful spurious handling (so only the injected bug's class trips).
    sim().trace().record(now(), path(), "credit_spurious",
                         util::format("cluster=%u", cluster));
    return;
  }

  ++count_;
  sim().trace().record(now(), path(), "credit",
                       util::format("count=%u/%u", count_, threshold_));

  if (bug_ == Bug::kEarlyIrq && count_ + 1 == threshold_) {
    armed_ = false;
    fire_irq();  // one credit short of the programmed threshold
    return;
  }

  if (count_ == threshold_) {
    armed_ = false;
    fire_irq();
    if (bug_ == Bug::kDuplicateIrq) fire_irq();
    if (bug_ == Bug::kPhantomCredit) {
      // The unit resets its count on disarm, then a stray internal pulse
      // applies one more credit with no cluster behind it.
      count_ = 1;
      sim().trace().record(now(), path(), "credit",
                           util::format("count=%u/%u", count_, threshold_));
    }
  }
}

}  // namespace mco::check
