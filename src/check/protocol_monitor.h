// Runtime invariant monitors for the offload protocol.
//
// The paper's contribution is a synchronization *protocol* — multicast
// dispatch, per-cluster credit increments, a threshold-triggered IRQ (Eq.
// 1–3) — and PR 1/PR 2 made its timing perturbable and measurable. This
// layer makes its *correctness* machine-checked: a ProtocolMonitor taps the
// TraceSink's live observer stream (sim/trace.h) and replays every record
// through a set of shadow state machines, one per invariant. A clean run
// produces zero violations; a protocol bug (lost credit, duplicated IRQ,
// retry without a watchdog round) produces a structured Violation carrying
// the recent event window that led up to it.
//
// The monitor is an observer in the strict sense: it never schedules
// simulator events and never touches component state, so attaching it cannot
// move a single simulated cycle (the metrics pins stay bit-identical with
// monitors on).
//
// Invariant catalog (docs/robustness.md mirrors this table; the
// check_metrics_docs.py cross-check keeps them in sync):
//   credit_bounds        count never exceeds threshold and advances by 1
//   credit_armed         credits are applied only while the unit is armed
//   credit_conservation  signals + duplicates - drops == applied + spurious
//   irq_threshold        an IRQ requires the armed threshold to be reached
//   irq_exactly_once     at most one IRQ per arm epoch
//   arm_discipline       no zero threshold; no re-arm while pending
//   dispatch_accounting  signals <= wakeups <= doorbells <= dispatches
//   retry_discipline     recovery actions require a watchdog timeout
//   span_balance         every begun span ends on its own track
//   offload_lifecycle    offload_start/offload_done strictly alternate
//   serve_isolation      serve-layer offloads use disjoint, healthy clusters
//                        and respect drain windows and shard fault domains
//   serve_exactly_once   every serve job retires exactly once across shard
//                        crashes, partitions and failover re-dispatches
//   serve_integrity      a convicted (digest-mismatched / audit-failed)
//                        result never retires with a delivered verdict; a
//                        silent escape under attestation is convicted from
//                        the corrupt=1 stamp; breaker-tripped clusters
//                        quarantine before serving again
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/trace.h"

namespace mco::soc {
class Soc;
}

namespace mco::check {

/// One invariant breach: which rule, when, on what subject, and the trailing
/// window of trace records that produced it.
struct Violation {
  std::string invariant;  ///< catalog name (see invariant_reference())
  sim::Cycle time = 0;
  std::string subject;  ///< component track or "sync"/"runtime"
  std::string message;
  std::vector<sim::TraceRecord> window;  ///< recent history, oldest first
};

/// Catalog entry: invariant name + one-line formal statement.
struct InvariantInfo {
  const char* name;
  const char* statement;
};

/// The full invariant catalog, in report order. docs/robustness.md lists the
/// same names; scripts/check_metrics_docs.py cross-checks the two.
const std::vector<InvariantInfo>& invariant_reference();

struct ProtocolMonitorConfig {
  /// Trace records of context attached to each violation.
  std::size_t history_window = 16;
  /// Reporting cap: further violations are counted but not stored.
  std::size_t max_violations = 64;
};

/// Observes a trace record stream and checks the offload-protocol invariants.
///
/// Feed records either by attaching to a live sink/Soc (observer tap) or by
/// calling observe() directly (replay of a stored trace). Call finish() after
/// the run: the conservation ledger, span balance and offload lifecycle are
/// end-of-run properties.
class ProtocolMonitor {
 public:
  explicit ProtocolMonitor(ProtocolMonitorConfig cfg = {});

  /// Install this monitor as the sink's live observer. Replaces any previous
  /// observer; the sink's storage enable state is left untouched.
  void attach(sim::TraceSink& sink);
  /// Convenience: attach to the Soc's simulator trace sink.
  void attach(soc::Soc& soc);

  /// Feed one record (the observer calls this; replays may too).
  void observe(const sim::TraceRecord& rec);

  /// End-of-run checks: credit conservation, span balance, open offloads.
  /// Idempotent per run; call once after the simulation drains.
  void finish();

  bool clean() const { return total_violations_ == 0; }
  /// Stored violations (capped at config.max_violations).
  const std::vector<Violation>& violations() const { return violations_; }
  /// Total violations detected, including any beyond the storage cap.
  std::uint64_t total_violations() const { return total_violations_; }
  std::uint64_t records_seen() const { return records_seen_; }

  /// "mco-violations-v1" JSON document: records_seen, violation count, and
  /// the stored violation list with their history windows.
  std::string to_json() const;

  /// Forget everything (state machines, ledger, violations).
  void reset();

 private:
  void violate(const char* invariant, sim::Cycle time, const std::string& subject,
               std::string message);

  void on_arm(const sim::TraceRecord& rec);
  void on_credit(const sim::TraceRecord& rec);
  void on_irq(const sim::TraceRecord& rec);
  void on_cluster_record(const sim::TraceRecord& rec);
  void on_runtime_record(const sim::TraceRecord& rec);
  void on_serve_record(const sim::TraceRecord& rec);
  void on_span(const sim::TraceRecord& rec);

  ProtocolMonitorConfig cfg_;

  std::uint64_t records_seen_ = 0;
  std::uint64_t total_violations_ = 0;
  std::vector<Violation> violations_;
  std::deque<sim::TraceRecord> history_;

  // Sync-unit shadow (credit_* / irq_* / arm_discipline).
  bool saw_arm_ = false;  ///< the run used the hw credit path at least once
  bool armed_ = false;
  bool threshold_reached_ = false;  ///< in the current arm epoch
  std::uint32_t threshold_ = 0;
  std::uint32_t count_ = 0;
  unsigned irqs_this_epoch_ = 0;

  // Conservation ledger (credit path only; the AMO path bypasses the unit).
  std::uint64_t signals_credit_ = 0;
  std::uint64_t signals_amo_ = 0;
  std::uint64_t credits_applied_ = 0;
  std::uint64_t credits_spurious_ = 0;
  std::uint64_t credit_drop_faults_ = 0;
  std::uint64_t credit_dup_faults_ = 0;

  // Per-cluster dispatch/completion accounting (dispatch_accounting).
  std::map<unsigned, std::uint64_t> dispatched_;
  std::map<unsigned, std::uint64_t> doorbells_;
  std::map<unsigned, std::uint64_t> wakeups_;
  std::map<unsigned, std::uint64_t> signals_;

  // Offload lifecycle / retry discipline.
  bool offload_open_ = false;
  std::uint64_t offloads_started_ = 0;
  std::uint64_t offloads_done_ = 0;
  std::uint64_t watchdogs_this_offload_ = 0;

  // Span balance: open-span depth per track.
  std::map<std::string, std::int64_t> span_depth_;

  // Serving-layer shadow (serve_isolation): which clusters each in-flight
  // serve offload/probe holds, which clusters are quarantined, and which
  // shards are inside an operator drain window (no job dispatches allowed;
  // probes may continue). Keyed by (shard, logical cluster ID): fleet-layer
  // records carry an explicit shard=<s>, single-service records omit it and
  // default to shard 0, so each shard's occupancy is shadowed independently.
  // Values describe the holder.
  std::map<std::pair<unsigned, unsigned>, std::string> serve_occupancy_;
  std::map<std::pair<unsigned, unsigned>, bool> serve_quarantined_;
  std::map<std::pair<unsigned, unsigned>, bool> serve_cluster_drained_;
  std::map<unsigned, bool> serve_draining_;  ///< by shard
  std::map<unsigned, bool> serve_down_;      ///< by shard: crashed or partitioned

  // Exactly-once ledger (serve_exactly_once): per serve job id, whether the
  // job has retired (serve_complete or serve_shed) and which failover epoch
  // it currently runs under. A stale completion may suppress only an epoch
  // the job has already moved past.
  struct ServeJobLedger {
    bool retired = false;
    std::uint64_t epoch = 0;
  };
  std::map<std::uint64_t, ServeJobLedger> serve_jobs_;

  // Integrity shadow (serve_integrity): jobs whose latest result was
  // convicted (serve_corruption) and must re-dispatch or retire failed —
  // never met/missed — plus clusters whose breaker tripped on a conviction
  // (tripped=...) and must see a serve_quarantine before any further
  // dispatch or probe lands on them.
  std::map<std::uint64_t, bool> serve_convicted_;  ///< by job id
  std::map<std::pair<unsigned, unsigned>, bool> serve_pending_quarantine_;

  bool finished_ = false;
};

}  // namespace mco::check
