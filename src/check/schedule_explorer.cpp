#include "check/schedule_explorer.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "soc/soc.h"
#include "soc/workloads.h"
#include "util/strings.h"

namespace mco::check {

namespace {

/// splitmix64 finalizer: decorrelates (base seed, schedule index, point
/// coordinates) into independent shuffle streams.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ScheduleExplorer::ScheduleExplorer(ScheduleExplorerConfig cfg) : cfg_(cfg) {
  if (cfg_.schedules == 0)
    throw std::invalid_argument("ScheduleExplorer: zero schedules (need at least the baseline)");
}

ScheduleReport ScheduleExplorer::explore(const exp::RunPoint& point) const {
  ScheduleReport report;
  report.point = point;
  report.fault_free = !point.cfg.fault.any_enabled();

  for (unsigned k = 0; k < cfg_.schedules; ++k) {
    soc::Soc soc(point.cfg);

    ProtocolMonitor monitor(cfg_.monitor);
    monitor.attach(soc);

    sim::Rng shuffle(mix(cfg_.seed ^ mix(point.seed + 0x9E37ull * k)));
    if (k > 0) {
      // Seeded Fisher–Yates over each simultaneously-ready batch. The stream
      // is private to this run and is consumed in deterministic batch order,
      // so schedule k of this point is reproducible in isolation.
      const bool wire_only = cfg_.wire_only;
      soc.simulator().set_commit_permuter(
          [&shuffle, wire_only](sim::Cycle, sim::Priority prio,
                                std::vector<std::size_t>& order) {
            if (wire_only && prio != sim::Priority::kWire) return;
            for (std::size_t i = order.size() - 1; i > 0; --i) {
              const std::size_t j = shuffle.next_below(i + 1);
              std::swap(order[i], order[j]);
            }
          });
    }

    const kernels::Kernel& kernel = soc.kernels().by_name(point.kernel);
    sim::Rng workload_rng(point.seed);
    soc::PreparedJob job =
        soc::prepare_workload(soc, kernel, point.n, soc.num_clusters(), workload_rng);
    const offload::OffloadResult result = soc.run_offload(job.args, point.m);
    monitor.finish();

    ScheduleRun run;
    run.schedule = k;
    run.total = result.total();
    run.max_abs_error = job.max_abs_error(soc);
    run.degraded = result.recovery.degraded;
    run.violations = monitor.total_violations();
    report.total_violations += monitor.total_violations();
    for (const Violation& v : monitor.violations()) report.violations.push_back(v);
    if (run.max_abs_error > point.tolerance) report.numerics_ok = false;

    if (k == 0) {
      report.min_total = report.max_total = run.total;
    } else {
      report.min_total = std::min(report.min_total, run.total);
      report.max_total = std::max(report.max_total, run.total);
    }
    report.runs.push_back(run);
  }
  report.cycles_identical = report.min_total == report.max_total;
  return report;
}

}  // namespace mco::check
