#include "check/protocol_monitor.h"

#include <cinttypes>
#include <cstdio>

#include "soc/soc.h"
#include "util/strings.h"

namespace mco::check {

const std::vector<InvariantInfo>& invariant_reference() {
  static const std::vector<InvariantInfo> kReference = {
      {"credit_bounds",
       "the credit count never exceeds the armed threshold and advances by exactly 1 per "
       "applied credit"},
      {"credit_armed", "a credit is applied only while the unit is armed"},
      {"credit_conservation",
       "credit signals sent + duplicates - drops == credits applied + spurious credits"},
      {"irq_threshold", "an IRQ fires only after the armed threshold was reached"},
      {"irq_exactly_once", "at most one IRQ fires per arm epoch"},
      {"arm_discipline",
       "the unit is never armed with threshold 0 and never re-armed while an epoch is pending"},
      {"dispatch_accounting",
       "per cluster, cumulative signals <= wakeups <= doorbells <= dispatches sent"},
      {"retry_discipline",
       "recovery actions (redispatch, credit_recovered, cluster_failed, redistribute) occur "
       "only after a watchdog timeout within the same offload"},
      {"span_balance", "every begun span is ended on its own track by the end of the run"},
      {"offload_lifecycle",
       "offload_start and offload_done strictly alternate and every offload completes"},
      {"serve_isolation",
       "serving-layer dispatches target only healthy (non-quarantined, non-drained) clusters "
       "of shards that are serving (not draining, crashed or partitioned), concurrent "
       "offloads and probes hold disjoint cluster sets per shard, and every held cluster is "
       "released by the end of the run (records without a shard key shadow as shard 0)"},
      {"serve_exactly_once",
       "every serving-layer job retires exactly once: completions and sheds are unique per "
       "job id, failover never re-dispatches a retired job, a stale completion is suppressed "
       "only when the job has moved past the completing epoch, and every job that entered "
       "the fleet retires by the end of the run"},
      {"serve_integrity",
       "a convicted result never retires with a delivered verdict: every serve_corruption is "
       "followed by an integrity retry, a failover or a failed/shed retirement of the job; a "
       "result stamped corrupt=1 retires as met only with attestation off (blind=1); and a "
       "cluster whose breaker tripped on a conviction quarantines before any further "
       "dispatch targets it"},
  };
  return kReference;
}

namespace {

/// Extract the trailing cluster index from a component path such as
/// "soc.cluster12" or "soc.cluster12.mailbox". Returns false for tracks
/// without a cluster component.
bool cluster_of(const std::string& who, unsigned& out) {
  const std::size_t pos = who.rfind("cluster");
  if (pos == std::string::npos) return false;
  const std::size_t digits = pos + 7;
  if (digits >= who.size() || who[digits] < '0' || who[digits] > '9') return false;
  unsigned v = 0;
  std::size_t i = digits;
  for (; i < who.size() && who[i] >= '0' && who[i] <= '9'; ++i) {
    v = v * 10 + static_cast<unsigned>(who[i] - '0');
  }
  if (i < who.size() && who[i] != '.') return false;
  out = v;
  return true;
}

/// Parse "key=<uint>" out of a detail string ("cluster=3", "targets=32",
/// "threshold=8", "count=4/8" via two calls). Returns false when absent.
bool detail_uint(const std::string& detail, const char* key, std::uint64_t& out) {
  const std::string needle = std::string(key) + "=";
  const std::size_t pos = detail.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = detail.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

/// Parse "key=<word>" out of a detail string, value ending at the next space.
bool detail_token(const std::string& detail, const char* key, std::string& out) {
  const std::string needle = std::string(key) + "=";
  const std::size_t pos = detail.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t end = detail.find(' ', start);
  out = detail.substr(start, end == std::string::npos ? std::string::npos : end - start);
  return true;
}

/// Parse a "key=0,1,2" comma-separated id list out of a detail string.
std::vector<unsigned> detail_id_list(const std::string& detail, const char* key) {
  std::vector<unsigned> out;
  const std::string needle = std::string(key) + "=";
  const std::size_t pos = detail.find(needle);
  if (pos == std::string::npos) return out;
  const char* p = detail.c_str() + pos + needle.size();
  while (*p >= '0' && *p <= '9') {
    char* end = nullptr;
    out.push_back(static_cast<unsigned>(std::strtoul(p, &end, 10)));
    p = end;
    if (*p != ',') break;
    ++p;
  }
  return out;
}

/// Parse the "clusters=0,1,2" list of a serve_dispatch/serve_complete detail.
std::vector<unsigned> detail_cluster_list(const std::string& detail) {
  std::vector<unsigned> out;
  const std::size_t pos = detail.find("clusters=");
  if (pos == std::string::npos) return out;
  const char* p = detail.c_str() + pos + 9;
  while (*p >= '0' && *p <= '9') {
    char* end = nullptr;
    out.push_back(static_cast<unsigned>(std::strtoul(p, &end, 10)));
    p = end;
    if (*p != ',') break;
    ++p;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

ProtocolMonitor::ProtocolMonitor(ProtocolMonitorConfig cfg) : cfg_(cfg) {}

void ProtocolMonitor::attach(sim::TraceSink& sink) {
  // Raw observer registration: one function-pointer hop per record, no
  // std::function boxing (the sink's "observer_raw" dispatch path).
  sink.set_observer(
      [](void* ctx, const sim::TraceRecord& rec) {
        static_cast<ProtocolMonitor*>(ctx)->observe(rec);
      },
      this);
}

void ProtocolMonitor::attach(soc::Soc& soc) { attach(soc.simulator().trace()); }

void ProtocolMonitor::violate(const char* invariant, sim::Cycle time,
                              const std::string& subject, std::string message) {
  ++total_violations_;
  if (violations_.size() >= cfg_.max_violations) return;
  Violation v;
  v.invariant = invariant;
  v.time = time;
  v.subject = subject;
  v.message = std::move(message);
  v.window.assign(history_.begin(), history_.end());
  violations_.push_back(std::move(v));
}

void ProtocolMonitor::observe(const sim::TraceRecord& rec) {
  ++records_seen_;
  if (cfg_.history_window > 0) {
    if (history_.size() == cfg_.history_window) history_.pop_front();
    history_.push_back(rec);
  }

  if (rec.phase != sim::TracePhase::kInstant) {
    on_span(rec);
    return;
  }

  const std::string& what = rec.what;
  if (what == "arm") {
    on_arm(rec);
  } else if (what == "credit") {
    on_credit(rec);
  } else if (what == "credit_spurious") {
    ++credits_spurious_;
  } else if (what == "sync_reset") {
    armed_ = false;
    threshold_reached_ = false;
    threshold_ = 0;
    count_ = 0;
    irqs_this_epoch_ = 0;
  } else if (what == "irq") {
    on_irq(rec);
  } else if (what == "credit_drop") {
    ++credit_drop_faults_;
  } else if (what == "credit_dup") {
    ++credit_dup_faults_;
  } else if (what == "doorbell" || what == "wakeup" || what == "signal") {
    on_cluster_record(rec);
  } else if (what == "unicast") {
    std::uint64_t c = 0;
    if (detail_uint(rec.detail, "cluster", c)) ++dispatched_[static_cast<unsigned>(c)];
  } else if (what == "multicast") {
    std::uint64_t k = 0;
    if (detail_uint(rec.detail, "targets", k)) {
      // The runtime always multicasts to the dense target set [0, k); the
      // detail string carries only the count.
      for (unsigned c = 0; c < static_cast<unsigned>(k); ++c) ++dispatched_[c];
    }
  } else if (rec.who == "serve") {
    on_serve_record(rec);
  } else if (what == "offload_start" || what == "offload_done" ||
             what == "watchdog_timeout" || what == "redispatch" ||
             what == "credit_recovered" || what == "cluster_failed" ||
             what == "redistribute") {
    on_runtime_record(rec);
  }
}

void ProtocolMonitor::on_arm(const sim::TraceRecord& rec) {
  std::uint64_t t = 0;
  detail_uint(rec.detail, "threshold", t);
  if (t == 0) {
    violate("arm_discipline", rec.time, rec.who, "armed with threshold 0");
  }
  if (armed_ && count_ < threshold_) {
    violate("arm_discipline", rec.time, rec.who,
            util::format("re-armed at count %u/%u with the previous epoch still pending",
                         count_, threshold_));
  }
  saw_arm_ = true;
  armed_ = true;
  threshold_reached_ = false;
  threshold_ = static_cast<std::uint32_t>(t);
  count_ = 0;
  irqs_this_epoch_ = 0;
}

void ProtocolMonitor::on_credit(const sim::TraceRecord& rec) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  detail_uint(rec.detail, "count", x);
  // "count=X/Y": re-parse Y after the slash.
  const std::size_t slash = rec.detail.find('/');
  if (slash != std::string::npos) {
    y = std::strtoull(rec.detail.c_str() + slash + 1, nullptr, 10);
  }
  ++credits_applied_;
  if (x > y) {
    violate("credit_bounds", rec.time, rec.who,
            util::format("credit count %llu exceeds threshold %llu",
                         static_cast<unsigned long long>(x),
                         static_cast<unsigned long long>(y)));
  } else if (!armed_) {
    violate("credit_armed", rec.time, rec.who,
            util::format("credit applied (count=%llu/%llu) while the unit is not armed",
                         static_cast<unsigned long long>(x),
                         static_cast<unsigned long long>(y)));
  } else if (x != static_cast<std::uint64_t>(count_) + 1) {
    violate("credit_bounds", rec.time, rec.who,
            util::format("credit count jumped from %u to %llu", count_,
                         static_cast<unsigned long long>(x)));
  }
  count_ = static_cast<std::uint32_t>(x);
  if (armed_ && x >= y && y == threshold_) {
    armed_ = false;
    threshold_reached_ = true;
  }
}

void ProtocolMonitor::on_irq(const sim::TraceRecord& rec) {
  if (!threshold_reached_) {
    violate("irq_threshold", rec.time, rec.who,
            util::format("IRQ at count %u/%u before the armed threshold was reached", count_,
                         threshold_));
  } else if (irqs_this_epoch_ >= 1) {
    violate("irq_exactly_once", rec.time, rec.who,
            util::format("IRQ fired %u times in one arm epoch", irqs_this_epoch_ + 1));
  }
  ++irqs_this_epoch_;
}

void ProtocolMonitor::on_cluster_record(const sim::TraceRecord& rec) {
  unsigned c = 0;
  if (!cluster_of(rec.who, c)) return;
  if (rec.what == "doorbell") {
    ++doorbells_[c];
    if (doorbells_[c] > dispatched_[c]) {
      violate("dispatch_accounting", rec.time, rec.who,
              util::format("doorbell #%llu on cluster %u but only %llu dispatches were sent",
                           static_cast<unsigned long long>(doorbells_[c]), c,
                           static_cast<unsigned long long>(dispatched_[c])));
    }
  } else if (rec.what == "wakeup") {
    ++wakeups_[c];
    if (wakeups_[c] > doorbells_[c]) {
      violate("dispatch_accounting", rec.time, rec.who,
              util::format("wakeup #%llu on cluster %u but only %llu doorbells rang",
                           static_cast<unsigned long long>(wakeups_[c]), c,
                           static_cast<unsigned long long>(doorbells_[c])));
    }
  } else {  // signal
    if (rec.detail == "credit") {
      ++signals_credit_;
    } else if (rec.detail == "amo") {
      ++signals_amo_;
    }
    ++signals_[c];
    if (signals_[c] > wakeups_[c]) {
      violate("dispatch_accounting", rec.time, rec.who,
              util::format("completion signal #%llu on cluster %u but only %llu wakeups",
                           static_cast<unsigned long long>(signals_[c]), c,
                           static_cast<unsigned long long>(wakeups_[c])));
    }
  }
}

void ProtocolMonitor::on_runtime_record(const sim::TraceRecord& rec) {
  if (rec.what == "offload_start") {
    if (offload_open_) {
      violate("offload_lifecycle", rec.time, rec.who,
              "offload_start while the previous offload is still open");
    }
    offload_open_ = true;
    ++offloads_started_;
    watchdogs_this_offload_ = 0;
  } else if (rec.what == "offload_done") {
    if (!offload_open_) {
      violate("offload_lifecycle", rec.time, rec.who,
              "offload_done without a matching offload_start");
    }
    offload_open_ = false;
    ++offloads_done_;
  } else if (rec.what == "watchdog_timeout") {
    if (!offload_open_) {
      violate("retry_discipline", rec.time, rec.who, "watchdog_timeout outside an offload");
    }
    ++watchdogs_this_offload_;
  } else {  // redispatch / credit_recovered / cluster_failed / redistribute
    if (watchdogs_this_offload_ == 0) {
      violate("retry_discipline", rec.time, rec.who,
              rec.what + " without a preceding watchdog_timeout in this offload");
    }
  }
}

void ProtocolMonitor::on_serve_record(const sim::TraceRecord& rec) {
  const std::string& what = rec.what;
  // Shard scope: fleet-layer records carry shard=<s>; the single service's
  // records have no shard key and shadow as shard 0. Each shard's occupancy,
  // quarantine and drain state is checked independently.
  std::uint64_t shard64 = 0;
  detail_uint(rec.detail, "shard", shard64);
  const auto shard = static_cast<unsigned>(shard64);
  if (what == "serve_dispatch") {
    if (serve_draining_.count(shard) && serve_draining_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("dispatch on shard %u while it is draining (%s)", shard,
                           rec.detail.c_str()));
    }
    if (serve_down_.count(shard) && serve_down_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("dispatch on shard %u while it is crashed/partitioned (%s)", shard,
                           rec.detail.c_str()));
    }
    for (const unsigned c : detail_cluster_list(rec.detail)) {
      const auto key = std::make_pair(shard, c);
      if (serve_quarantined_.count(key) && serve_quarantined_[key]) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("dispatch targets quarantined cluster %u of shard %u (%s)", c,
                             shard, rec.detail.c_str()));
      }
      if (serve_cluster_drained_.count(key) && serve_cluster_drained_[key]) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("dispatch targets drained cluster %u of shard %u (%s)", c, shard,
                             rec.detail.c_str()));
      }
      const auto held = serve_occupancy_.find(key);
      if (held != serve_occupancy_.end()) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("dispatch targets cluster %u of shard %u already held by %s", c,
                             shard, held->second.c_str()));
      }
      if (serve_pending_quarantine_.count(key) && serve_pending_quarantine_[key]) {
        violate("serve_integrity", rec.time, rec.who,
                util::format("dispatch targets cluster %u of shard %u convicted of corruption "
                             "before its quarantine",
                             c, shard));
      }
      serve_occupancy_[key] = rec.detail;
    }
    // Only the batch's lead job id is named in the record; the rest of the
    // batch entered the ledger through serve_queue or serve_failover.
    std::uint64_t job = 0;
    if (detail_uint(rec.detail, "job", job)) {
      if (serve_jobs_[job].retired) {
        violate("serve_exactly_once", rec.time, rec.who,
                util::format("dispatch of job %llu which already retired",
                             static_cast<unsigned long long>(job)));
      }
    }
  } else if (what == "serve_complete" || what == "serve_shed") {
    // Intermediate completions of a coalesced batch carry no clusters= key
    // (the partition is held until the batch's last job): the empty list
    // releases nothing.
    for (const unsigned c : detail_cluster_list(rec.detail)) {
      if (serve_occupancy_.erase(std::make_pair(shard, c)) == 0) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("completion releases cluster %u of shard %u that was never held",
                             c, shard));
      }
    }
    std::uint64_t job = 0;
    if (detail_uint(rec.detail, "job", job)) {
      ServeJobLedger& ledger = serve_jobs_[job];
      if (ledger.retired) {
        violate("serve_exactly_once", rec.time, rec.who,
                util::format("job %llu retired twice (%s)",
                             static_cast<unsigned long long>(job), rec.detail.c_str()));
      }
      ledger.retired = true;
      // Integrity: a convicted result may retire failed (or shed), never
      // with a delivered verdict; either way the retirement closes the
      // conviction.
      std::string verdict;
      detail_token(rec.detail, "verdict", verdict);
      const bool delivered = verdict == "met" || verdict == "missed";
      if (serve_convicted_.count(job) && serve_convicted_[job]) {
        if (delivered) {
          violate("serve_integrity", rec.time, rec.who,
                  util::format("job %llu retires %s with its latest result convicted",
                               static_cast<unsigned long long>(job), verdict.c_str()));
        }
        serve_convicted_[job] = false;
      }
      // A result the oracle stamped corrupt=1 escaped every defense; retiring
      // it as met is a breach unless attestation was off (blind=1).
      std::uint64_t corrupt = 0;
      std::uint64_t blind = 0;
      detail_uint(rec.detail, "corrupt", corrupt);
      detail_uint(rec.detail, "blind", blind);
      if (corrupt == 1 && blind == 0 && verdict == "met") {
        violate("serve_integrity", rec.time, rec.who,
                util::format("silently corrupted result of job %llu retired as met under "
                             "attestation",
                             static_cast<unsigned long long>(job)));
      }
    }
  } else if (what == "serve_corruption") {
    // A convicted completion: releases the batch partition like a
    // serve_complete (clusters= rides the batch-final record only), but the
    // job does NOT retire — it must re-dispatch or fail.
    for (const unsigned c : detail_cluster_list(rec.detail)) {
      if (serve_occupancy_.erase(std::make_pair(shard, c)) == 0) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("conviction releases cluster %u of shard %u that was never held",
                             c, shard));
      }
    }
    std::uint64_t job = 0;
    if (detail_uint(rec.detail, "job", job)) {
      if (serve_jobs_[job].retired) {
        violate("serve_integrity", rec.time, rec.who,
                util::format("conviction of job %llu which already retired",
                             static_cast<unsigned long long>(job)));
      }
      serve_convicted_[job] = true;
    }
    // Breaker trips on a conviction must quarantine before the cluster
    // serves again.
    for (const unsigned c : detail_id_list(rec.detail, "tripped")) {
      serve_pending_quarantine_[std::make_pair(shard, c)] = true;
    }
  } else if (what == "serve_audit") {
    std::uint64_t job = 0;
    if (detail_uint(rec.detail, "job", job) && serve_jobs_[job].retired) {
      violate("serve_integrity", rec.time, rec.who,
              util::format("audit of job %llu which already retired",
                           static_cast<unsigned long long>(job)));
    }
  } else if (what == "serve_integrity_retry") {
    std::uint64_t job = 0;
    if (!detail_uint(rec.detail, "job", job)) return;
    if (!serve_convicted_.count(job) || !serve_convicted_[job]) {
      violate("serve_integrity", rec.time, rec.who,
              util::format("integrity retry of job %llu without a conviction",
                           static_cast<unsigned long long>(job)));
    }
    serve_convicted_[job] = false;
  } else if (what == "serve_queue") {
    if (serve_down_.count(shard) && serve_down_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("enqueue on shard %u while it is crashed/partitioned (%s)", shard,
                           rec.detail.c_str()));
    }
    std::uint64_t job = 0;
    if (detail_uint(rec.detail, "job", job)) {
      if (serve_jobs_[job].retired) {
        violate("serve_exactly_once", rec.time, rec.who,
                util::format("enqueue of job %llu which already retired",
                             static_cast<unsigned long long>(job)));
      }
    }
  } else if (what == "serve_failover") {
    std::uint64_t job = 0;
    std::uint64_t epoch = 0;
    if (!detail_uint(rec.detail, "job", job) || !detail_uint(rec.detail, "epoch", epoch)) return;
    ServeJobLedger& ledger = serve_jobs_[job];
    if (ledger.retired) {
      violate("serve_exactly_once", rec.time, rec.who,
              util::format("failover re-dispatches job %llu which already retired",
                           static_cast<unsigned long long>(job)));
    }
    if (epoch != ledger.epoch + 1) {
      violate("serve_exactly_once", rec.time, rec.who,
              util::format("failover of job %llu jumps epoch %llu -> %llu",
                           static_cast<unsigned long long>(job),
                           static_cast<unsigned long long>(ledger.epoch),
                           static_cast<unsigned long long>(epoch)));
    }
    ledger.epoch = epoch;
    // A failover supersedes a pending conviction: the displaced job re-routes
    // through the crash path, retrying (or failing) there.
    if (serve_convicted_.count(job)) serve_convicted_[job] = false;
  } else if (what == "serve_stale_completion") {
    // A buffered completion surfacing after a partition heal: it releases the
    // batch's clusters like a serve_complete, but the job must NOT retire —
    // suppression is legal only because the job moved to a newer epoch (or
    // already settled through another path).
    for (const unsigned c : detail_cluster_list(rec.detail)) {
      if (serve_occupancy_.erase(std::make_pair(shard, c)) == 0) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("stale completion releases cluster %u of shard %u that was never "
                             "held",
                             c, shard));
      }
    }
    std::uint64_t job = 0;
    std::uint64_t epoch = 0;
    if (!detail_uint(rec.detail, "job", job) || !detail_uint(rec.detail, "epoch", epoch)) return;
    const ServeJobLedger& ledger = serve_jobs_[job];
    if (!ledger.retired && ledger.epoch <= epoch) {
      violate("serve_exactly_once", rec.time, rec.who,
              util::format("stale completion of job %llu suppresses its live epoch %llu",
                           static_cast<unsigned long long>(job),
                           static_cast<unsigned long long>(epoch)));
    }
  } else if (what == "serve_fail") {
    if (serve_down_.count(shard) && serve_down_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("crash of shard %u which is already down", shard));
    }
    serve_down_[shard] = true;
    // Crash-stop: everything the shard held — batches and probes — is gone
    // with the fabric; no per-batch release records follow.
    for (auto it = serve_occupancy_.begin(); it != serve_occupancy_.end();) {
      if (it->first.first == shard) {
        it = serve_occupancy_.erase(it);
      } else {
        ++it;
      }
    }
  } else if (what == "serve_partition") {
    if (serve_down_.count(shard) && serve_down_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("partition of shard %u which is already down", shard));
    }
    // Unlike a crash, the shard keeps executing behind the cut link:
    // occupancy stays until the stale completions surface at heal time.
    serve_down_[shard] = true;
  } else if (what == "serve_heal") {
    if (!serve_down_.count(shard) || !serve_down_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("heal of shard %u which is not down", shard));
    }
    serve_down_[shard] = false;
  } else if (what == "serve_drain_clusters") {
    for (const unsigned c : detail_cluster_list(rec.detail)) {
      const auto key = std::make_pair(shard, c);
      if (serve_cluster_drained_.count(key) && serve_cluster_drained_[key]) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("drain of cluster %u of shard %u which is already drained", c,
                             shard));
      }
      serve_cluster_drained_[key] = true;
    }
  } else if (what == "serve_undrain_clusters") {
    for (const unsigned c : detail_cluster_list(rec.detail)) {
      const auto key = std::make_pair(shard, c);
      if (!serve_cluster_drained_.count(key) || !serve_cluster_drained_[key]) {
        violate("serve_isolation", rec.time, rec.who,
                util::format("undrain of cluster %u of shard %u which is not drained", c,
                             shard));
      }
      serve_cluster_drained_[key] = false;
    }
  } else if (what == "serve_probe") {
    std::uint64_t c = 0;
    if (!detail_uint(rec.detail, "cluster", c)) return;
    if (serve_down_.count(shard) && serve_down_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("probe on shard %u while it is crashed/partitioned", shard));
    }
    const auto key = std::make_pair(shard, static_cast<unsigned>(c));
    if (!serve_quarantined_.count(key) || !serve_quarantined_[key]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("probe on cluster %u of shard %u which is not quarantined",
                           static_cast<unsigned>(c), shard));
    }
    const auto held = serve_occupancy_.find(key);
    if (held != serve_occupancy_.end()) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("probe targets cluster %u of shard %u already held by %s",
                           static_cast<unsigned>(c), shard, held->second.c_str()));
    }
    serve_occupancy_[key] = "probe";
  } else if (what == "serve_probe_done") {
    std::uint64_t c = 0;
    if (!detail_uint(rec.detail, "cluster", c)) return;
    if (serve_occupancy_.erase(std::make_pair(shard, static_cast<unsigned>(c))) == 0) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("probe completion on cluster %u of shard %u that was never held",
                           static_cast<unsigned>(c), shard));
    }
  } else if (what == "serve_quarantine") {
    std::uint64_t c = 0;
    if (detail_uint(rec.detail, "cluster", c)) {
      const auto key = std::make_pair(shard, static_cast<unsigned>(c));
      serve_quarantined_[key] = true;
      if (serve_pending_quarantine_.count(key)) serve_pending_quarantine_[key] = false;
    }
  } else if (what == "serve_readmit") {
    std::uint64_t c = 0;
    if (!detail_uint(rec.detail, "cluster", c)) return;
    const auto key = std::make_pair(shard, static_cast<unsigned>(c));
    if (!serve_quarantined_.count(key) || !serve_quarantined_[key]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("re-admission of cluster %u of shard %u that was not quarantined",
                           static_cast<unsigned>(c), shard));
    }
    serve_quarantined_[key] = false;
  } else if (what == "serve_drain") {
    if (serve_draining_.count(shard) && serve_draining_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("drain of shard %u while it is already draining", shard));
    }
    serve_draining_[shard] = true;
  } else if (what == "serve_undrain") {
    if (!serve_draining_.count(shard) || !serve_draining_[shard]) {
      violate("serve_isolation", rec.time, rec.who,
              util::format("undrain of shard %u while it is not draining", shard));
    }
    serve_draining_[shard] = false;
  }
  // serve_restart needs no shadow transition of its own: the service (or the
  // fleet, per shard) aborts in-flight work (serve_complete/serve_probe_done)
  // before it and emits one serve_quarantine per cluster after it.
}

void ProtocolMonitor::on_span(const sim::TraceRecord& rec) {
  std::int64_t& depth = span_depth_[rec.who];
  if (rec.phase == sim::TracePhase::kBegin) {
    ++depth;
    return;
  }
  if (depth == 0) {
    violate("span_balance", rec.time, rec.who, "span end without an open span");
    return;
  }
  --depth;
}

void ProtocolMonitor::finish() {
  if (finished_) return;
  finished_ = true;
  // The ledger counts one application attempt per delivered credit signal
  // (plus one extra per duplicate, minus the drops); every attempt must have
  // surfaced as an applied or spurious credit. Only meaningful when the run
  // used the hw credit path: the AMO-polling baseline shares the injector's
  // credit_drop/credit_dup hook but never arms a unit, so its ledger is
  // all-fault-counters by construction.
  const std::uint64_t expected = signals_credit_ + credit_dup_faults_ - credit_drop_faults_;
  const std::uint64_t observed = credits_applied_ + credits_spurious_;
  if (saw_arm_ &&
      (signals_credit_ + credit_dup_faults_ < credit_drop_faults_ || expected != observed)) {
    violate("credit_conservation", 0, "sync",
            util::format("signals=%llu dup=%llu drop=%llu but applied=%llu spurious=%llu",
                         static_cast<unsigned long long>(signals_credit_),
                         static_cast<unsigned long long>(credit_dup_faults_),
                         static_cast<unsigned long long>(credit_drop_faults_),
                         static_cast<unsigned long long>(credits_applied_),
                         static_cast<unsigned long long>(credits_spurious_)));
  }
  for (const auto& [who, depth] : span_depth_) {
    if (depth != 0) {
      violate("span_balance", 0, who,
              util::format("%lld span(s) still open at end of run",
                           static_cast<long long>(depth)));
    }
  }
  if (offload_open_) {
    violate("offload_lifecycle", 0, "runtime", "offload never completed");
  }
  for (const auto& [key, holder] : serve_occupancy_) {
    violate("serve_isolation", 0, "serve",
            util::format("cluster %u of shard %u still held by %s at end of run", key.second,
                         key.first, holder.c_str()));
  }
  for (const auto& [job, ledger] : serve_jobs_) {
    if (!ledger.retired) {
      violate("serve_exactly_once", 0, "serve",
              util::format("job %llu entered the fleet but never retired (epoch %llu)",
                           static_cast<unsigned long long>(job),
                           static_cast<unsigned long long>(ledger.epoch)));
    }
  }
  for (const auto& [job, convicted] : serve_convicted_) {
    if (convicted) {
      violate("serve_integrity", 0, "serve",
              util::format("job %llu ended the run convicted, with no retry or failure",
                           static_cast<unsigned long long>(job)));
    }
  }
  for (const auto& [key, pending] : serve_pending_quarantine_) {
    if (pending) {
      violate("serve_integrity", 0, "serve",
              util::format("cluster %u of shard %u tripped the breaker on a conviction but "
                           "never quarantined",
                           key.second, key.first));
    }
  }
}

std::string ProtocolMonitor::to_json() const {
  std::string out = "{\n  \"schema\": \"mco-violations-v1\",\n";
  out += util::format("  \"records_seen\": %llu,\n",
                      static_cast<unsigned long long>(records_seen_));
  out += util::format("  \"total_violations\": %llu,\n",
                      static_cast<unsigned long long>(total_violations_));
  out += "  \"violations\": [";
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    const Violation& v = violations_[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format("    {\"invariant\": \"%s\", \"time\": %llu, \"subject\": \"%s\", ",
                        json_escape(v.invariant).c_str(),
                        static_cast<unsigned long long>(v.time),
                        json_escape(v.subject).c_str());
    out += util::format("\"message\": \"%s\", \"window\": [", json_escape(v.message).c_str());
    for (std::size_t w = 0; w < v.window.size(); ++w) {
      const sim::TraceRecord& r = v.window[w];
      out += w == 0 ? "" : ", ";
      out += util::format("{\"time\": %llu, \"phase\": \"%c\", \"who\": \"%s\", "
                          "\"what\": \"%s\", \"detail\": \"%s\"}",
                          static_cast<unsigned long long>(r.time),
                          static_cast<char>(r.phase), json_escape(r.who).c_str(),
                          json_escape(r.what).c_str(), json_escape(r.detail).c_str());
    }
    out += "]}";
  }
  out += violations_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void ProtocolMonitor::reset() {
  records_seen_ = 0;
  total_violations_ = 0;
  violations_.clear();
  history_.clear();
  saw_arm_ = false;
  armed_ = false;
  threshold_reached_ = false;
  threshold_ = 0;
  count_ = 0;
  irqs_this_epoch_ = 0;
  signals_credit_ = 0;
  signals_amo_ = 0;
  credits_applied_ = 0;
  credits_spurious_ = 0;
  credit_drop_faults_ = 0;
  credit_dup_faults_ = 0;
  dispatched_.clear();
  doorbells_.clear();
  wakeups_.clear();
  signals_.clear();
  offload_open_ = false;
  offloads_started_ = 0;
  offloads_done_ = 0;
  watchdogs_this_offload_ = 0;
  span_depth_.clear();
  serve_occupancy_.clear();
  serve_quarantined_.clear();
  serve_cluster_drained_.clear();
  serve_draining_.clear();
  serve_down_.clear();
  serve_jobs_.clear();
  serve_convicted_.clear();
  serve_pending_quarantine_.clear();
  finished_ = false;
}

}  // namespace mco::check
