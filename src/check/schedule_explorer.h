// Seeded same-cycle schedule exploration for the offload protocol.
//
// The simulator's tie-break for events ready at the same (time, priority) is
// FIFO by insertion order — one legal hardware schedule out of many. The
// protocol's correctness claims (and the paper's cycle counts) must not
// depend on that accident: credits may arrive at the sync unit in any order,
// multicast replicas may commit in any order, an IRQ edge races the poll
// loop. The ScheduleExplorer re-runs one RunPoint under N seeded random
// commit orders (a Fisher–Yates shuffle of every simultaneously-ready
// Priority::kWire batch, via Simulator::set_commit_permuter) with a
// ProtocolMonitor attached, and reports:
//   * violations    — union of monitor findings across all schedules;
//   * cycle spread  — min/max offload latency over the schedules. Fault-free
//     runs must be bit-identical (wire batches are commutative: same-cycle
//     credits, replicated dispatches); faulted runs may differ because the
//     injector draws in commit order, so each schedule is a *different*
//     legal fault pattern — there the numerics, not the cycles, must hold.
//
// Only kWire batches are permuted by default: protocol messages ride the
// wire priority, while memory arbitration (kMemory) and host/cluster
// sequencing (kCpu/kDefault) model pipelines whose order is architectural,
// not racy.
//
// Schedule 0 is always the unpermuted FIFO baseline. Exploration is
// deterministic per (config seed, point): run k's shuffle stream is seeded
// by mixing the seed with k, never by global state, so reports are
// bit-identical at any SweepRunner --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/protocol_monitor.h"
#include "exp/spec.h"
#include "sim/time.h"

namespace mco::check {

struct ScheduleExplorerConfig {
  /// Schedules per point, including the FIFO baseline (schedule 0).
  unsigned schedules = 8;
  /// Base seed for the per-schedule shuffle streams.
  std::uint64_t seed = 0x5C4EDull;
  /// Permute only Priority::kWire batches (see header comment). When false
  /// every same-(time, priority) batch is shuffled — useful for probing how
  /// much of the cycle count is arbitration accident.
  bool wire_only = true;
  ProtocolMonitorConfig monitor;
};

/// Outcome of one schedule of one point.
struct ScheduleRun {
  unsigned schedule = 0;  ///< 0 = FIFO baseline
  sim::Cycles total = 0;
  double max_abs_error = 0.0;
  bool degraded = false;
  std::uint64_t violations = 0;
};

/// Everything explore() learned about one RunPoint.
struct ScheduleReport {
  exp::RunPoint point;
  bool fault_free = true;
  std::vector<ScheduleRun> runs;
  /// Union of stored monitor violations across schedules (bounded by the
  /// monitor config's max_violations per schedule).
  std::vector<Violation> violations;
  std::uint64_t total_violations = 0;

  sim::Cycles min_total = 0;
  sim::Cycles max_total = 0;
  /// True when every schedule produced the same offload latency. Expected
  /// for fault-free points; informational for faulted ones.
  bool cycles_identical = true;
  /// True when every schedule's result error stayed within tolerance.
  bool numerics_ok = true;

  bool clean() const { return total_violations == 0 && numerics_ok; }
};

class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(ScheduleExplorerConfig cfg = {});

  const ScheduleExplorerConfig& config() const { return cfg_; }

  /// Run `point` under config().schedules seeded commit orders. Thread-safe
  /// (no mutable state): SweepRunner::map may fan points out across workers.
  ScheduleReport explore(const exp::RunPoint& point) const;

 private:
  ScheduleExplorerConfig cfg_;
};

}  // namespace mco::check
