// A deliberately-buggy credit counter: the monitors' proving ground.
//
// A monitor that has never caught a bug is just overhead. This test double
// mimics the sync::CreditCounterUnit's observable behaviour (the same "arm" /
// "credit" / "credit_spurious" / "irq" trace vocabulary) but implements one
// classic counter bug per Bug mode — the failure modes Glaser et al.'s HW
// synchronization unit must exclude by construction. test_check drives each
// mode through a mini offload harness and asserts the ProtocolMonitor flags
// exactly the expected invariant class:
//   kLoseCredit     drops every 2nd credit silently  -> credit_conservation
//   kDoubleCount    applies each credit twice, never
//                   stops counting at the threshold  -> credit_bounds
//   kEarlyIrq       fires the IRQ one credit early   -> irq_threshold
//   kDuplicateIrq   fires the IRQ twice              -> irq_exactly_once
//   kPhantomCredit  invents a credit after disarm    -> credit_armed
// kNone is the faithful reference: the same harness must report zero
// violations, or the harness (not the counter) is broken.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/component.h"

namespace mco::check {

class BrokenCreditCounter : public sim::Component {
 public:
  enum class Bug {
    kNone,
    kLoseCredit,
    kDoubleCount,
    kEarlyIrq,
    kDuplicateIrq,
    kPhantomCredit,
  };

  BrokenCreditCounter(sim::Simulator& sim, std::string name, Bug bug,
                      Component* parent = nullptr);

  void set_irq_callback(std::function<void()> cb) { irq_cb_ = std::move(cb); }

  /// Program the threshold (emits the unit's "arm" record).
  void arm(std::uint32_t threshold);

  /// One credit-register write from `cluster`, filtered through the bug.
  void increment(unsigned cluster = 0);

  std::uint32_t count() const { return count_; }
  bool armed() const { return armed_; }

 private:
  void fire_irq();

  Bug bug_;
  std::function<void()> irq_cb_;
  bool armed_ = false;
  std::uint32_t threshold_ = 0;
  std::uint32_t count_ = 0;
  std::uint64_t arrivals_ = 0;
};

}  // namespace mco::check
